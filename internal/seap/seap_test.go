package seap

import (
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/mathx"
	"dpq/internal/prio"
	"dpq/internal/semantics"
	"dpq/internal/sim"
)

func maxRounds(n int) int { return 4000 * (mathx.Log2Ceil(n) + 3) }

var engines = map[*Heap]*sim.SyncEngine{}

func engineOf(h *Heap) *sim.SyncEngine {
	eng, ok := engines[h]
	if !ok {
		eng = h.NewSyncEngine()
		engines[h] = eng
	}
	return eng
}

func runSync(t *testing.T, h *Heap) {
	t.Helper()
	eng := engineOf(h)
	if !eng.RunUntil(h.Done, maxRounds(h.cfg.N)) {
		t.Fatalf("heap stuck: %d/%d ops done after %d rounds",
			h.trace.DoneCount(), h.trace.Len(), eng.Metrics().Rounds)
	}
}

func TestSingleInsertDelete(t *testing.T) {
	h := New(Config{N: 4, PrioBound: 100, Seed: 1})
	h.InjectInsert(0, 1, 42, "x")
	h.InjectDelete(2)
	runSync(t, h)
	if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics violated:\n%s", rep.Error())
	}
	for _, op := range h.Trace().Ops() {
		if op.Kind == semantics.DeleteMin && op.Result.ID != 1 {
			t.Fatalf("delete returned %v", op.Result)
		}
	}
}

func TestEmptyHeapDeletes(t *testing.T) {
	h := New(Config{N: 3, PrioBound: 10, Seed: 2})
	h.InjectDelete(0)
	h.InjectDelete(1)
	runSync(t, h)
	for _, op := range h.Trace().Ops() {
		if !op.Result.Nil() {
			t.Fatalf("delete on empty heap returned %v", op.Result)
		}
	}
	if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics violated:\n%s", rep.Error())
	}
}

func TestMinimumComesOutFirst(t *testing.T) {
	h := New(Config{N: 8, PrioBound: 1 << 20, Seed: 3})
	h.InjectInsert(1, 10, 500000, "low")
	h.InjectInsert(3, 11, 7, "hi")
	h.InjectInsert(5, 12, 90000, "mid")
	runSync(t, h)
	h.InjectDelete(2)
	runSync(t, h)
	for _, op := range h.Trace().Ops() {
		if op.Kind == semantics.DeleteMin && op.Result.ID != 11 {
			t.Fatalf("delete returned %v, want the priority-7 element", op.Result)
		}
	}
	if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics violated:\n%s", rep.Error())
	}
}

func TestMoreDeletesThanElements(t *testing.T) {
	h := New(Config{N: 4, PrioBound: 50, Seed: 4})
	h.InjectInsert(0, 1, 5, "")
	h.InjectInsert(1, 2, 9, "")
	for host := 0; host < 4; host++ {
		h.InjectDelete(host)
	}
	runSync(t, h)
	matched, bottoms := 0, 0
	for _, op := range h.Trace().Ops() {
		if op.Kind != semantics.DeleteMin {
			continue
		}
		if op.Result.Nil() {
			bottoms++
		} else {
			matched++
		}
	}
	if matched != 2 || bottoms != 2 {
		t.Fatalf("matched=%d bottoms=%d", matched, bottoms)
	}
	if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics violated:\n%s", rep.Error())
	}
}

func randomWorkload(h *Heap, seed uint64, ops int) {
	rnd := hashutil.NewRand(seed)
	id := prio.ElemID(1)
	for i := 0; i < ops; i++ {
		host := rnd.Intn(h.cfg.N)
		if rnd.Bool(0.6) {
			h.InjectInsert(host, id, rnd.Uint64n(h.cfg.PrioBound)+1, "")
			id++
		} else {
			h.InjectDelete(host)
		}
	}
}

func TestRandomWorkloadSerializable(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		h := New(Config{N: n, PrioBound: 1000, Seed: uint64(n) * 11})
		randomWorkload(h, uint64(n)*13, 60)
		runSync(t, h)
		if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
			t.Fatalf("n=%d: semantics violated:\n%s", n, rep.Error())
		}
	}
}

func TestDuplicatePriorities(t *testing.T) {
	// Heavy ties: the id tiebreaker orders equal priorities.
	h := New(Config{N: 6, PrioBound: 3, Seed: 21})
	for i := 0; i < 30; i++ {
		h.InjectInsert(i%6, prio.ElemID(i+1), uint64(i%3)+1, "")
	}
	runSync(t, h)
	for i := 0; i < 30; i++ {
		h.InjectDelete(i % 6)
	}
	runSync(t, h)
	if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics violated:\n%s", rep.Error())
	}
}

func TestContinuousInjection(t *testing.T) {
	h := New(Config{N: 8, PrioBound: 10000, Seed: 7})
	eng := engineOf(h)
	rnd := hashutil.NewRand(8)
	id := prio.ElemID(1)
	for round := 0; round < 3000; round++ {
		if round < 1500 && round%10 == 0 {
			host := rnd.Intn(8)
			if rnd.Bool(0.5) {
				h.InjectInsert(host, id, rnd.Uint64n(10000)+1, "")
				id++
			} else {
				h.InjectDelete(host)
			}
		}
		eng.Step()
		if round > 1500 && h.Done() {
			break
		}
	}
	if !h.Done() {
		eng.RunUntil(h.Done, maxRounds(8))
	}
	if !h.Done() {
		t.Fatalf("ops incomplete: %d/%d", h.trace.DoneCount(), h.trace.Len())
	}
	if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics violated:\n%s", rep.Error())
	}
}

func TestAsyncExecutionSerializable(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		h := New(Config{N: 5, PrioBound: 500, Seed: 100 + seed})
		randomWorkload(h, 200+seed, 30)
		eng := h.NewAsyncEngine(3.0)
		if !eng.RunUntil(h.Done, 5_000_000) {
			t.Fatalf("seed %d: async run incomplete (%d/%d)", seed, h.trace.DoneCount(), h.trace.Len())
		}
		if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
			t.Fatalf("seed %d: semantics violated:\n%s", seed, rep.Error())
		}
	}
}

func TestFairness(t *testing.T) {
	n := 16
	h := New(Config{N: n, PrioBound: 1 << 30, Seed: 9})
	rnd := hashutil.NewRand(10)
	m := 32 * n
	for i := 0; i < m; i++ {
		h.InjectInsert(rnd.Intn(n), prio.ElemID(i+1), rnd.Uint64n(1<<30)+1, "")
	}
	runSync(t, h)
	// Insert ops complete when issued; run on until every Put has landed.
	eng := engineOf(h)
	eng.RunUntil(func() bool {
		total := 0
		for _, s := range h.StoreSizes() {
			total += s
		}
		return total == m
	}, maxRounds(n))
	sizes := h.StoreSizes()
	total, max := 0, 0
	for _, s := range sizes {
		total += s
		if s > max {
			max = s
		}
	}
	if total != m {
		t.Fatalf("stored %d of %d", total, m)
	}
	if max > 8*(m/n) {
		t.Fatalf("max load %d vs mean %d", max, m/n)
	}
	if h.Size() != int64(m) {
		t.Fatalf("anchor believes m=%d", h.Size())
	}
}

func TestInterleavedGrowShrink(t *testing.T) {
	h := New(Config{N: 4, PrioBound: 100000, Seed: 12})
	rnd := hashutil.NewRand(13)
	id := prio.ElemID(1)
	for wave := 0; wave < 4; wave++ {
		for i := 0; i < 12; i++ {
			h.InjectInsert(rnd.Intn(4), id, rnd.Uint64n(100000)+1, "")
			id++
		}
		runSync(t, h)
		for i := 0; i < 8; i++ {
			h.InjectDelete(rnd.Intn(4))
		}
		runSync(t, h)
	}
	if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics violated:\n%s", rep.Error())
	}
	if h.Size() != 16 {
		t.Fatalf("expected 16 residual elements, anchor says %d", h.Size())
	}
}

func TestCyclesProgress(t *testing.T) {
	h := New(Config{N: 4, Seed: 14})
	eng := engineOf(h)
	for i := 0; i < 400; i++ {
		eng.Step()
	}
	if h.Cycles() < 2 {
		t.Fatalf("anchor should keep cycling, got %d", h.Cycles())
	}
}

func TestMessageBitsIndependentOfRate(t *testing.T) {
	// Theorem 5.1(5): message size O(log n) bits regardless of Λ. Compare
	// max message bits between a low-rate and a high-rate run.
	run := func(ops int) int {
		h := New(Config{N: 8, PrioBound: 1 << 20, Seed: 15})
		randomWorkload(h, 16, ops)
		eng := h.NewSyncEngine()
		if !eng.RunUntil(h.Done, maxRounds(8)) {
			t.Fatalf("run with %d ops stuck", ops)
		}
		return eng.Metrics().MaxMessageBit
	}
	low := run(4)
	high := run(200)
	if high > 2*low {
		t.Fatalf("max message bits grew with the injection rate: %d -> %d", low, high)
	}
}

func TestInvalidPriorityPanics(t *testing.T) {
	h := New(Config{N: 1, PrioBound: 10, Seed: 16})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.InjectInsert(0, 1, 0, "")
}

func TestDelRecordSorting(t *testing.T) {
	mk := func(pos int64, id prio.ElemID, p prio.Priority) *delRecord {
		return &delRecord{pos: pos, res: prio.Element{ID: id, Prio: p}, done: true}
	}
	byKey := []*delRecord{mk(3, 9, 50), mk(1, 2, 10), mk(2, 5, 10)}
	sortRecordsByKey(byKey)
	if byKey[0].res.ID != 2 || byKey[1].res.ID != 5 || byKey[2].res.ID != 9 {
		t.Fatalf("key order wrong: %v %v %v", byKey[0].res, byKey[1].res, byKey[2].res)
	}
	byPos := []*delRecord{mk(9, 0, 0), mk(2, 0, 0), mk(5, 0, 0)}
	sortRecordsByPos(byPos)
	if byPos[0].pos != 2 || byPos[1].pos != 5 || byPos[2].pos != 9 {
		t.Fatalf("pos order wrong")
	}
}

func TestValShareBits(t *testing.T) {
	if (&valShare{}).Bits() != 4*64 {
		t.Fatal("valShare bits")
	}
	if cycleVal(3).Bits() != 64 {
		t.Fatal("cycleVal bits")
	}
	if (&assignParams{}).Bits() != 64+128 {
		t.Fatal("assignParams bits")
	}
}
