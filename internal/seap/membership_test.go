package seap

import (
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/prio"
	"dpq/internal/semantics"
	"dpq/internal/sim"
)

type memRig struct {
	h   *Heap
	eng *sim.SyncEngine
}

func newMemRig(n int, seed uint64) *memRig {
	h := New(Config{N: n, PrioBound: 1 << 16, Seed: seed})
	h.SetAutoRepeat(false)
	return &memRig{h: h, eng: h.NewSyncEngine()}
}

func (r *memRig) drain(t *testing.T) {
	t.Helper()
	for iter := 0; iter < 60; iter++ {
		if r.h.Done() && !r.eng.Pending() && !r.h.inFlight {
			return
		}
		if !r.h.inFlight {
			r.h.StartCycle(r.eng.Context(r.h.ov.Anchor))
		}
		if !r.eng.RunQuiescent(r.h.Done, maxRounds(r.h.cfg.N)) {
			t.Fatalf("drain stuck: %d/%d done", r.h.trace.DoneCount(), r.h.trace.Len())
		}
	}
	t.Fatal("drain did not converge")
}

func seapStored(h *Heap) int {
	t := 0
	for _, s := range h.StoreSizes() {
		t += s
	}
	return t
}

func TestSeapLeavePreservesData(t *testing.T) {
	r := newMemRig(6, 700)
	rnd := hashutil.NewRand(701)
	for i := 0; i < 24; i++ {
		r.h.InjectInsert(i%6, prio.ElemID(i+1), rnd.Uint64n(1<<16)+1, "")
	}
	r.drain(t)
	if seapStored(r.h) != 24 {
		t.Fatalf("stored %d before leave", seapStored(r.h))
	}
	r.h.RemoveHost(r.eng, 2)
	if seapStored(r.h) != 24 {
		t.Fatalf("leave lost data: %d stored", seapStored(r.h))
	}
	if r.h.StoreSizes()[2] != 0 {
		t.Fatal("departed host still stores elements")
	}
	// All elements retrievable via the surviving hosts.
	for i := 0; i < 24; i++ {
		host := i % 6
		if host == 2 {
			host = 3
		}
		r.h.InjectDelete(host)
	}
	r.drain(t)
	if rep := semantics.CheckSerializable(r.h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics after leave:\n%s", rep.Error())
	}
	for _, op := range r.h.Trace().Ops() {
		if op.Kind == semantics.DeleteMin && op.Result.Nil() {
			t.Fatal("element lost across the leave")
		}
	}
}

func TestSeapJoinParticipates(t *testing.T) {
	r := newMemRig(4, 710)
	rnd := hashutil.NewRand(711)
	for i := 0; i < 20; i++ {
		r.h.InjectInsert(i%4, prio.ElemID(i+1), rnd.Uint64n(1<<16)+1, "")
	}
	r.drain(t)
	newHost := r.h.AddHost(r.eng, 4242)
	if seapStored(r.h) != 20 {
		t.Fatalf("join lost data: %d", seapStored(r.h))
	}
	// The newcomer issues ops, including a delete served by KSelect over
	// the regrown node set.
	r.h.InjectInsert(newHost, 999, 1, "newcomer-min")
	r.h.InjectDelete(newHost)
	r.drain(t)
	var res prio.Element
	for _, op := range r.h.Trace().Ops() {
		if op.Kind == semantics.DeleteMin {
			res = op.Result
		}
	}
	if res.ID != 999 {
		t.Fatalf("delete returned %v, want the priority-1 newcomer element", res)
	}
	if rep := semantics.CheckSerializable(r.h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics after join:\n%s", rep.Error())
	}
}

func TestSeapChurn(t *testing.T) {
	r := newMemRig(5, 720)
	rnd := hashutil.NewRand(721)
	id := prio.ElemID(1)
	inject := func(k int) {
		for i := 0; i < k; i++ {
			host := rnd.Intn(len(r.h.nodes) / 3)
			for !r.h.ov.ActiveHost(host) {
				host = rnd.Intn(len(r.h.nodes) / 3)
			}
			if rnd.Bool(0.7) {
				r.h.InjectInsert(host, id, rnd.Uint64n(1<<16)+1, "")
				id++
			} else {
				r.h.InjectDelete(host)
			}
		}
	}
	inject(15)
	r.drain(t)
	r.h.RemoveHost(r.eng, 1)
	inject(12)
	r.drain(t)
	r.h.AddHost(r.eng, 8888)
	inject(12)
	r.drain(t)
	if rep := semantics.CheckSerializable(r.h.Trace(), semantics.ByID); !rep.Ok() {
		t.Fatalf("semantics under churn:\n%s", rep.Error())
	}
	ins, dels := 0, 0
	for _, op := range r.h.Trace().Ops() {
		switch op.Kind {
		case semantics.Insert:
			ins++
		case semantics.DeleteMin:
			if !op.Result.Nil() {
				dels++
			}
		}
	}
	if seapStored(r.h) != ins-dels {
		t.Fatalf("conservation broken: stored %d, want %d", seapStored(r.h), ins-dels)
	}
	if r.h.Size() != int64(ins-dels) {
		t.Fatalf("anchor m=%d, want %d", r.h.Size(), ins-dels)
	}
}

func TestSeapMembershipGuards(t *testing.T) {
	r := newMemRig(3, 730)
	r.h.InjectInsert(0, 1, 1, "")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic with outstanding ops")
			}
		}()
		r.h.AddHost(r.eng, 1)
	}()
}
