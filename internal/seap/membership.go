package seap

import (
	"dpq/internal/aggtree"
	"dpq/internal/dht"
	"dpq/internal/ldb"
	"dpq/internal/prio"
	"dpq/internal/sim"
)

// Membership changes (§1.4(4)) for Seap, mirroring skeap's: applied at
// quiescent points between cycles, with every stored element handed over
// to the node responsible under the new topology. Seap's anchor state
// (m, value counter, cycle) lives on the Heap driver, so only the DHT
// shards move; the embedded KSelect selector grows alongside the node set.

// AddHost joins a new process to a quiescent heap and returns its host
// slot. eng must be the heap's engine.
func (h *Heap) AddHost(eng *sim.SyncEngine, id uint64) int {
	h.requireQuiescent(eng)
	host := h.ov.AddHost(id)
	for k := 0; k < 3; k++ {
		n := &Node{
			heap:   h,
			runner: aggtree.NewRunner(h.ov),
			store:  dht.New(h.ov),
		}
		n.register()
		h.nodes = append(h.nodes, n)
		h.selector.AddNode()
		got := eng.AddHandler(&nodeHandler{n: n, id: sim.NodeID(len(h.nodes) - 1)}, h.cfg.Seed+uint64(len(h.nodes)))
		if int(got) != len(h.nodes)-1 {
			panic("seap: engine and heap node ids diverged")
		}
	}
	h.cfg.N++
	h.migrate()
	return host
}

// RemoveHost makes a process leave a quiescent heap, handing its stored
// elements over to the nodes responsible under the new topology.
func (h *Heap) RemoveHost(eng *sim.SyncEngine, host int) {
	h.requireQuiescent(eng)
	mid := h.nodes[ldb.VID(host, ldb.Middle)]
	mid.mu.Lock()
	buffered := len(mid.insBuf) + len(mid.delBuf) + len(mid.seqBuf)
	mid.mu.Unlock()
	if buffered > 0 {
		panic("seap: leaving host still has buffered operations")
	}
	h.ov.RemoveHost(host)
	h.cfg.N--
	h.migrate()
}

func (h *Heap) requireQuiescent(eng *sim.SyncEngine) {
	if !h.Done() {
		panic("seap: membership change while operations are outstanding")
	}
	if eng.Pending() {
		panic("seap: membership change while messages are in flight")
	}
	if h.autoRepeat {
		panic("seap: disable auto-repeat before membership changes")
	}
	if h.inFlight {
		panic("seap: membership change while a cycle is in flight")
	}
	for _, n := range h.nodes {
		if n.store.PendingCount() > 0 || n.outPuts > 0 || n.outGets > 0 {
			panic("seap: membership change with outstanding DHT requests")
		}
	}
}

// migrate redistributes every stored element to its new responsible node,
// recording how many changed hands (experiment E20).
func (h *Heap) migrate() {
	type housed struct {
		elems []prio.Element
		was   sim.NodeID
	}
	all := make(map[uint64][]housed)
	for i, n := range h.nodes {
		for key, elems := range n.store.Dump() {
			all[key] = append(all[key], housed{elems: elems, was: sim.NodeID(i)})
		}
	}
	h.lastMigrated = 0
	for key, hs := range all {
		owner := h.ov.Responsible(dht.KeyPoint(key))
		for _, hd := range hs {
			h.nodes[owner].store.Absorb(key, hd.elems)
			if hd.was != owner {
				h.lastMigrated += len(hd.elems)
			}
		}
	}
}

// MigratedLastChange returns how many stored elements changed hosts during
// the most recent membership change.
func (h *Heap) MigratedLastChange() int { return h.lastMigrated }
