package seap

// Wire registrations for Seap's tree values. They are unexported protocol
// internals, so their codecs must live in this package.

import (
	"dpq/internal/prio"
	"dpq/internal/sim"
	"dpq/internal/wire"
)

func init() {
	wire.Register("seap/val-share", &valShare{},
		func(w *wire.Writer, msg sim.Message) {
			v := msg.(*valShare)
			w.I64(v.Lo)
			w.I64(v.Hi)
			w.U64(v.Cycle)
			w.I64(v.KStar)
		},
		func(r *wire.Reader) sim.Message {
			v := &valShare{}
			v.Lo = r.I64()
			v.Hi = r.I64()
			v.Cycle = r.U64()
			v.KStar = r.I64()
			return v
		},
		&valShare{Lo: 3, Hi: 9, Cycle: 2, KStar: 5},
	)
	wire.Register("seap/cycle", cycleVal(0),
		func(w *wire.Writer, msg sim.Message) {
			w.U64(uint64(msg.(cycleVal)))
		},
		func(r *wire.Reader) sim.Message {
			return cycleVal(r.U64())
		},
		cycleVal(0), cycleVal(19),
	)
	wire.Register("seap/assign-params", &assignParams{},
		func(w *wire.Writer, msg sim.Message) {
			p := msg.(*assignParams)
			w.U64(p.Cycle)
			w.Key(p.Threshold)
		},
		func(r *wire.Reader) sim.Message {
			return &assignParams{Cycle: r.U64(), Threshold: r.Key()}
		},
		&assignParams{Cycle: 3, Threshold: prio.Key{Prio: 1000, ID: 4}},
	)
}
