package seap

import (
	"testing"

	"dpq/internal/semantics"
	"dpq/internal/sim"
)

// TestFaultyAsyncSerializable: Seap's multi-phase cycles (counts, KSelect,
// DHT extraction) must survive 20% drops, duplicates and crash windows
// behind the reliable transport, and stay serializable + heap consistent.
func TestFaultyAsyncSerializable(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		h := New(Config{N: 4, PrioBound: 500, Seed: 700 + seed})
		randomWorkload(h, 800+seed, 24)
		plan := sim.NewFaultPlan(sim.FaultProfile{
			Seed:      900 + seed,
			DropRate:  0.20,
			DupRate:   0.10,
			DelayRate: 0.05,
			CrashRate: 0.002,
		})
		eng, transports := h.NewFaultyAsyncEngine(3.0, plan)
		if !eng.RunUntil(h.Done, 12_000_000) {
			t.Fatalf("seed %d: faulty run incomplete (%d/%d; faults %v)",
				seed, h.trace.DoneCount(), h.trace.Len(), plan)
		}
		if rep := semantics.CheckSerializable(h.Trace(), semantics.ByID); !rep.Ok() {
			t.Fatalf("seed %d: semantics violated under faults:\n%s", seed, rep.Error())
		}
		drops, _, _, _ := plan.Counts()
		if drops == 0 {
			t.Fatalf("seed %d: no drops injected at rate 0.2", seed)
		}
		if sim.SumTransportStats(transports).Retries == 0 {
			t.Fatalf("seed %d: drops injected but nothing retransmitted", seed)
		}
	}
}
