package relax

import (
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/semantics"
)

// FuzzRelaxOptions drives the relaxation engine across fuzzed (mode, k,
// batch, seed) configurations: invalid knob combinations must be rejected
// by Validate, and every valid configuration must pass the oracle battery
// — relaxed validity, the Lamport insert-before-delivery floor, a rank
// error below the structural bound (an element can never rank below more
// than the live-set size), and same-seed reproducibility.
func FuzzRelaxOptions(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(0), uint64(1))
	f.Add(uint8(1), uint8(4), uint8(0), uint64(7))
	f.Add(uint8(2), uint8(0), uint8(8), uint64(3))
	f.Add(uint8(2), uint8(0), uint8(1), uint64(9))
	f.Add(uint8(1), uint8(0), uint8(0), uint64(5))
	f.Add(uint8(0), uint8(3), uint8(0), uint64(2)) // invalid: strict + K
	f.Fuzz(func(t *testing.T, modeB, kB, batchB uint8, seed uint64) {
		o := Options{Mode: Mode(modeB % 4), K: int(kB % 9), Batch: int(batchB % 17)}
		if err := o.Validate(); err != nil {
			return // invalid knob combination, correctly rejected
		}
		if !o.Enabled() {
			return // strict mode exercises the exact protocols, not this engine
		}
		const n = 4
		run := func() (obs.RankStats, *semantics.Trace) {
			h := New(Config{N: n, Seed: seed, Mode: o.Mode, K: o.K, Batch: o.Batch})
			rnd := hashutil.NewRand(seed + 1)
			id := prio.ElemID(1)
			inserts := 0
			for host := 0; host < n; host++ {
				for i := 0; i < 8; i++ {
					if rnd.Bool(0.6) {
						h.InjectInsert(host, id, rnd.Uint64n(64)+1, "")
						id++
						inserts++
					} else {
						h.InjectDelete(host)
					}
				}
			}
			eng := h.NewSyncEngine()
			if !eng.RunUntil(h.Done, maxRounds(n)) {
				t.Fatalf("%v seed=%d: engine stuck", o, seed)
			}
			st := obs.TraceRankError(h.Trace())
			if rep := semantics.CheckRelaxedValidity(h.Trace()); !rep.Ok() {
				t.Fatalf("%v seed=%d: relaxed validity violated:\n%s", o, seed, rep.Error())
			}
			if inserts > 0 && st.Max >= inserts {
				t.Fatalf("%v seed=%d: rank error %d exceeds structural bound %d",
					o, seed, st.Max, inserts-1)
			}
			return st, h.Trace()
		}
		st1, _ := run()
		st2, _ := run()
		if st1 != st2 {
			t.Fatalf("%v seed=%d: rank stats not reproducible: %+v vs %+v", o, seed, st1, st2)
		}
	})
}
