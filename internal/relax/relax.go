package relax

import (
	"fmt"
	"sync"

	"dpq/internal/hashutil"
	"dpq/internal/ldb"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/semantics"
	"dpq/internal/seqheap"
	"dpq/internal/sim"
)

// Config parameterizes a relaxed heap network.
type Config struct {
	N    int    // number of real processes
	Seed uint64 // seed for overlay labels and per-node sampling
	Mode Mode   // SampleK or BatchLocal (Strict is not a network)
	// K is SampleK's sample size (0 = DefaultK, clamped to [1, N]).
	K int
	// Batch is BatchLocal's prefetch refill size (0 = DefaultBatch).
	Batch int
	// PrioBound is the inclusive priority bound (0 = 1<<30, the Seap
	// "arbitrary priorities" default).
	PrioBound uint64
	// MaxInFlight caps how many SampleK probe sequences one host runs
	// concurrently (0 = 8). Queued deletes wait their turn.
	MaxInFlight int
}

// Escalation thresholds: after this many failed sampled attempts, a
// delete (SampleK) or a refill (BatchLocal) probes every host, so an
// all-empty verdict — and therefore ⊥ — is always reached in bounded
// time and a lone element on an unlucky host is always found.
const (
	sampleEscalateAfter = 3
	stealEscalateAfter  = 3
	defaultMaxInFlight  = 8
)

// pendingOp is a buffered heap operation awaiting the next activation.
type pendingOp struct {
	kind semantics.OpKind
	elem prio.Element
	op   *semantics.Op
}

// delReq is one SampleK DeleteMin in flight at its issuing host.
type delReq struct {
	op       *semantics.Op
	id       uint64
	attempts int
	full     bool // current attempt probes every host
	waiting  int  // outstanding probe replies
	bestSet  bool
	best     prio.Key
	bestHost int
}

// Heap drives a relaxed priority-queue network: per-host sequential heaps
// on the LDB overlay, coupled only by probe/pop/steal messages. It
// satisfies Backend, so the facade and the serving layer drive it exactly
// like the strict protocols.
type Heap struct {
	cfg   Config
	ov    *ldb.Overlay
	nodes []*node // one per host
	trace *semantics.Trace
	col   *obs.Collector
}

// node is one host's relaxation state, living at the host's middle
// virtual node. The left/right virtual nodes of the overlay are inert —
// the relaxation engine needs no tree, only peer-to-peer sends — but the
// overlay keeps congestion grouping and the network runtime's host
// mapping identical to the strict protocols.
type node struct {
	heap *Heap
	host int

	mu     sync.Mutex
	buffer []pendingOp // injected, not yet activated (guarded by mu)

	local *seqheap.Heap // this host's share of the structure

	// clock is the host's Lamport clock; serialization values are minted
	// from it (see messages.go for why that orders Insert before the
	// DeleteMin that returns the element on every engine).
	clock   uint64
	nextReq uint64

	// SampleK state.
	reqs     map[uint64]*delReq
	queued   []*delReq
	inFlight int

	// BatchLocal state.
	prefetch      []prio.Element   // host-local delivery buffer (FIFO)
	waitingDel    []*semantics.Op  // deletes waiting for the next refill
	stealing      bool             // one steal in flight at a time
	stealAttempts int              // consecutive empty steals
	surveyReq     uint64           // nonzero while an all-host survey runs
	surveyWaiting int
	surveyBestSet bool
	surveyBest    prio.Key
	surveyHost    int
}

// New builds a relaxed heap network. Like the strict protocols it is
// inert until its handlers run on an engine and operations are injected.
func New(cfg Config) *Heap {
	if cfg.N < 1 {
		panic("relax: at least one host required")
	}
	if cfg.N >= 1<<16 {
		panic("relax: host count must fit 16 bits of the serialization value")
	}
	if cfg.Mode != SampleK && cfg.Mode != BatchLocal {
		panic(fmt.Sprintf("relax: Config.Mode must be SampleK or BatchLocal (got %v)", cfg.Mode))
	}
	if cfg.K == 0 {
		cfg.K = DefaultK
	}
	if cfg.K > cfg.N {
		cfg.K = cfg.N
	}
	if cfg.Batch == 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.PrioBound == 0 {
		cfg.PrioBound = 1 << 30
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	h := &Heap{
		cfg:   cfg,
		ov:    ldb.New(cfg.N, hashutil.New(cfg.Seed)),
		trace: semantics.NewTrace(),
	}
	h.nodes = make([]*node, cfg.N)
	// Flat backing array for the per-host state — one allocation instead
	// of N — with the reqs map left nil until a SampleK delete touches the
	// host (a per-node footprint saving at large N).
	arena := make([]node, cfg.N)
	for i := range h.nodes {
		nd := &arena[i]
		nd.heap = h
		nd.host = i
		nd.local = seqheap.New(0)
		h.nodes[i] = nd
	}
	return h
}

// Overlay exposes the underlying LDB (engine grouping, network runtime).
func (h *Heap) Overlay() *ldb.Overlay { return h.ov }

// Trace returns the execution trace for the semantics checkers.
func (h *Heap) Trace() *semantics.Trace { return h.trace }

// Done reports whether every injected operation has completed.
func (h *Heap) Done() bool { return h.trace.DoneCount() == h.trace.Len() }

// Mode returns the configured relaxation mode.
func (h *Heap) Mode() Mode { return h.cfg.Mode }

// SetObs attaches a collector (serving-layer hook; the relaxation engine
// has no multi-phase timeline to mark, so the collector only aggregates
// the engine's per-kind message stats). nil detaches.
func (h *Heap) SetObs(c *obs.Collector) { h.col = c }

// Handlers returns the per-virtual-node sim handlers: the host state at
// each middle node, inert handlers at the tree-only left/right nodes.
func (h *Heap) Handlers() []sim.Handler {
	hs := make([]sim.Handler, h.ov.NumVirtual())
	flat := make([]nodeHandler, h.ov.N)
	for i := range hs {
		if ldb.KindOf(sim.NodeID(i)) == ldb.Middle {
			host := ldb.HostOf(sim.NodeID(i))
			flat[host] = nodeHandler{nd: h.nodes[host]}
			hs[i] = &flat[host]
		} else {
			hs[i] = inertHandler{}
		}
	}
	return hs
}

// spec is the common part of every engine the heap wires itself into.
func (h *Heap) spec(kind sim.EngineKind) sim.Spec {
	groups, group := h.ov.Group()
	return sim.Spec{Kind: kind, Handlers: h.Handlers(), Seed: h.cfg.Seed + 1, Groups: groups, Group: group}
}

// NewSyncEngine wires the heap into a synchronous engine with per-host
// congestion grouping.
func (h *Heap) NewSyncEngine() *sim.SyncEngine {
	return sim.Build(h.spec(sim.KindSync)).(*sim.SyncEngine)
}

// NewAsyncEngine wires the heap into the seeded asynchronous engine.
func (h *Heap) NewAsyncEngine(maxDelay float64) *sim.AsyncEngine {
	spec := h.spec(sim.KindAsync)
	spec.MaxDelay = maxDelay
	return sim.Build(spec).(*sim.AsyncEngine)
}

// NewConcEngine wires the heap into the goroutine-backed engine.
func (h *Heap) NewConcEngine() *sim.ConcEngine {
	return sim.Build(h.spec(sim.KindConc)).(*sim.ConcEngine)
}

// InjectInsert buffers Insert(e) at host. p is the 1-based raw priority
// (no protocol-internal remapping: the relaxation engine stores elements
// exactly as injected). The returned op completes once the element is in
// the host's local heap.
func (h *Heap) InjectInsert(host int, id prio.ElemID, p uint64, payload string) *semantics.Op {
	if p < 1 || p > h.cfg.PrioBound {
		panic(fmt.Sprintf("relax: priority %d out of range [1,%d]", p, h.cfg.PrioBound))
	}
	e := prio.Element{ID: id, Prio: prio.Priority(p), Payload: payload}
	op := h.trace.Issue(host, semantics.Insert, e)
	nd := h.nodes[host]
	nd.mu.Lock()
	nd.buffer = append(nd.buffer, pendingOp{kind: semantics.Insert, elem: e, op: op})
	nd.mu.Unlock()
	return op
}

// InjectDelete buffers DeleteMin() at host. The returned op carries the
// delivered element (or ⊥) once complete.
func (h *Heap) InjectDelete(host int) *semantics.Op {
	op := h.trace.Issue(host, semantics.DeleteMin, prio.Element{})
	nd := h.nodes[host]
	nd.mu.Lock()
	nd.buffer = append(nd.buffer, pendingOp{kind: semantics.DeleteMin, op: op})
	nd.mu.Unlock()
	return op
}

// LocalSizes returns each host's local-heap size (tests, experiments).
func (h *Heap) LocalSizes() []int {
	out := make([]int, len(h.nodes))
	for i, nd := range h.nodes {
		out[i] = nd.local.Len()
	}
	return out
}

// ---- node mechanics ------------------------------------------------------

// tick advances the Lamport clock for a local event and returns it.
func (nd *node) tick() uint64 {
	nd.clock++
	return nd.clock
}

// recv advances the clock past an incoming message's stamp.
func (nd *node) recv(s uint64) {
	if s > nd.clock {
		nd.clock = s
	}
	nd.clock++
}

// complete stamps op with a serialization value minted from the Lamport
// clock: (clock << 16) | host. Clocks tick on every completion, so values
// are unique per host; the host bits make them unique globally.
func (nd *node) complete(op *semantics.Op, res prio.Element) {
	c := nd.tick()
	if c >= 1<<46 {
		panic("relax: logical clock overflow")
	}
	nd.heap.trace.Complete(op, res, int64(c<<16|uint64(nd.host)))
}

// send stamps and sends m to the middle virtual node of host.
func (nd *node) send(ctx *sim.Context, host int, m stamped) {
	m.setStamp(nd.tick())
	ctx.Send(ldb.VID(host, ldb.Middle), m.(sim.Message))
}

func keyLess(a, b prio.Key) bool {
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.ID < b.ID
}

// activate drains the injection buffer — inserts complete on the spot,
// deletes enter the mode's service queue — then pumps the mode's state
// machine.
func (nd *node) activate(ctx *sim.Context) {
	nd.mu.Lock()
	ops := nd.buffer
	nd.buffer = nil
	nd.mu.Unlock()
	for _, po := range ops {
		if po.kind == semantics.Insert {
			nd.local.Insert(po.elem)
			nd.complete(po.op, po.elem)
			continue
		}
		switch nd.heap.cfg.Mode {
		case SampleK:
			nd.nextReq++
			d := &delReq{op: po.op, id: nd.nextReq}
			if nd.reqs == nil {
				nd.reqs = map[uint64]*delReq{}
			}
			nd.reqs[d.id] = d
			nd.queued = append(nd.queued, d)
		case BatchLocal:
			nd.waitingDel = append(nd.waitingDel, po.op)
		}
	}
	switch nd.heap.cfg.Mode {
	case SampleK:
		nd.pump(ctx)
	case BatchLocal:
		nd.servePrefetch(ctx)
	}
}

// pump starts probe sequences for queued deletes up to the in-flight cap.
func (nd *node) pump(ctx *sim.Context) {
	for nd.inFlight < nd.heap.cfg.MaxInFlight && len(nd.queued) > 0 {
		d := nd.queued[0]
		nd.queued = nd.queued[1:]
		nd.inFlight++
		nd.startProbe(ctx, d)
	}
}

// startProbe launches one probe attempt for d: k sampled hosts, or every
// host once the attempt count escalates (or k ≥ n).
func (nd *node) startProbe(ctx *sim.Context, d *delReq) {
	n := nd.heap.cfg.N
	d.attempts++
	d.bestSet = false
	if d.attempts > sampleEscalateAfter || nd.heap.cfg.K >= n {
		d.full = true
		d.waiting = n
		for t := 0; t < n; t++ {
			nd.send(ctx, t, &probeMsg{Req: d.id})
		}
		return
	}
	d.full = false
	perm := ctx.Rand().Perm(n)
	targets := perm[:nd.heap.cfg.K]
	d.waiting = len(targets)
	for _, t := range targets {
		nd.send(ctx, t, &probeMsg{Req: d.id})
	}
}

// finishDelete completes d and frees its in-flight slot.
func (nd *node) finishDelete(ctx *sim.Context, d *delReq, e prio.Element) {
	delete(nd.reqs, d.id)
	nd.inFlight--
	nd.complete(d.op, e)
	nd.pump(ctx)
}

// ---- BatchLocal mechanics ------------------------------------------------

// servePrefetch serves waiting deletes from the prefetch buffer,
// refilling from the local heap or — when it is empty — by stealing a
// batch from a peer; an all-host survey is the escalation that either
// finds a non-empty peer or proves the structure empty (⊥).
func (nd *node) servePrefetch(ctx *sim.Context) {
	cfg := nd.heap.cfg
	for len(nd.waitingDel) > 0 {
		if len(nd.prefetch) > 0 {
			e := nd.prefetch[0]
			nd.prefetch = nd.prefetch[1:]
			op := nd.waitingDel[0]
			nd.waitingDel = nd.waitingDel[1:]
			nd.complete(op, e)
			continue
		}
		if nd.local.Len() > 0 {
			for i := 0; i < cfg.Batch && nd.local.Len() > 0; i++ {
				e, _ := nd.local.DeleteMin()
				nd.prefetch = append(nd.prefetch, e)
			}
			continue
		}
		if cfg.N == 1 {
			// Nobody to steal from: the structure is empty.
			op := nd.waitingDel[0]
			nd.waitingDel = nd.waitingDel[1:]
			nd.complete(op, prio.Element{})
			continue
		}
		if !nd.stealing && nd.surveyReq == 0 {
			if nd.stealAttempts >= stealEscalateAfter {
				nd.startSurvey(ctx)
			} else {
				nd.startSteal(ctx, nd.pickStealTarget(ctx))
			}
		}
		return // a steal or survey is in flight; its reply resumes service
	}
}

// pickStealTarget samples a peer uniformly (never self: the own heap was
// just found empty).
func (nd *node) pickStealTarget(ctx *sim.Context) int {
	t := ctx.Rand().Intn(nd.heap.cfg.N - 1)
	if t >= nd.host {
		t++
	}
	return t
}

func (nd *node) startSteal(ctx *sim.Context, host int) {
	nd.stealing = true
	nd.send(ctx, host, &stealMsg{Max: uint32(nd.heap.cfg.Batch)})
}

func (nd *node) startSurvey(ctx *sim.Context) {
	nd.nextReq++
	nd.surveyReq = nd.nextReq
	nd.surveyWaiting = nd.heap.cfg.N
	nd.surveyBestSet = false
	for t := 0; t < nd.heap.cfg.N; t++ {
		nd.send(ctx, t, &probeMsg{Req: nd.surveyReq})
	}
}

// ---- message dispatch ----------------------------------------------------

func (nd *node) handleMessage(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	st, ok := msg.(stamped)
	if !ok {
		panic(fmt.Sprintf("relax: unexpected message %T", msg))
	}
	nd.recv(st.stamp())
	switch m := msg.(type) {
	case *probeMsg:
		rep := &probeReply{Req: m.Req}
		if min, have := nd.local.Min(); have {
			rep.Min = prio.KeyOf(min)
		} else {
			rep.Empty = true
		}
		nd.send(ctx, ldb.HostOf(from), rep)
	case *probeReply:
		if nd.heap.cfg.Mode == SampleK {
			nd.handleProbeReply(ctx, from, m)
		} else {
			nd.handleSurveyReply(ctx, from, m)
		}
	case *popMsg:
		rep := &popReply{Req: m.Req}
		if e, have := nd.local.DeleteMin(); have {
			rep.OK = true
			rep.Elem = e
		}
		nd.send(ctx, ldb.HostOf(from), rep)
	case *popReply:
		d := nd.reqs[m.Req]
		if d == nil {
			return
		}
		if m.OK {
			nd.finishDelete(ctx, d, m.Elem)
		} else {
			// The winner emptied between probe and pop; re-probe.
			nd.startProbe(ctx, d)
		}
	case *stealMsg:
		rep := &stealReply{}
		for i := uint32(0); i < m.Max && nd.local.Len() > 0; i++ {
			e, _ := nd.local.DeleteMin()
			rep.Elems = append(rep.Elems, e)
		}
		nd.send(ctx, ldb.HostOf(from), rep)
	case *stealReply:
		nd.stealing = false
		if len(m.Elems) > 0 {
			nd.prefetch = append(nd.prefetch, m.Elems...)
			nd.stealAttempts = 0
		} else {
			nd.stealAttempts++
		}
		nd.servePrefetch(ctx)
	default:
		panic(fmt.Sprintf("relax: unexpected message %T", msg))
	}
}

// handleProbeReply folds one SampleK probe answer into its delete.
func (nd *node) handleProbeReply(ctx *sim.Context, from sim.NodeID, m *probeReply) {
	d := nd.reqs[m.Req]
	if d == nil || d.waiting == 0 {
		return
	}
	d.waiting--
	if !m.Empty && (!d.bestSet || keyLess(m.Min, d.best)) {
		d.bestSet = true
		d.best = m.Min
		d.bestHost = ldb.HostOf(from)
	}
	if d.waiting > 0 {
		return
	}
	switch {
	case d.bestSet:
		nd.send(ctx, d.bestHost, &popMsg{Req: d.id})
	case d.full:
		// Every host answered empty: the structure is empty — ⊥.
		nd.finishDelete(ctx, d, prio.Element{})
	default:
		nd.startProbe(ctx, d)
	}
}

// handleSurveyReply folds one BatchLocal survey answer.
func (nd *node) handleSurveyReply(ctx *sim.Context, from sim.NodeID, m *probeReply) {
	if m.Req != nd.surveyReq || nd.surveyWaiting == 0 {
		return
	}
	nd.surveyWaiting--
	if !m.Empty && (!nd.surveyBestSet || keyLess(m.Min, nd.surveyBest)) {
		nd.surveyBestSet = true
		nd.surveyBest = m.Min
		nd.surveyHost = ldb.HostOf(from)
	}
	if nd.surveyWaiting > 0 {
		return
	}
	nd.surveyReq = 0
	if nd.surveyBestSet {
		nd.stealAttempts = 0
		nd.startSteal(ctx, nd.surveyHost)
		return
	}
	// Every local heap is empty: concede ⊥ for everything waiting now.
	for _, op := range nd.waitingDel {
		nd.complete(op, prio.Element{})
	}
	nd.waitingDel = nil
}

// nodeHandler adapts a node to sim.Handler.
type nodeHandler struct{ nd *node }

func (h *nodeHandler) HandleMessage(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	h.nd.handleMessage(ctx, from, msg)
}
func (h *nodeHandler) Activate(ctx *sim.Context) { h.nd.activate(ctx) }

// inertHandler backs the left/right virtual nodes, which carry no
// relaxation state and must never be addressed.
type inertHandler struct{}

func (inertHandler) HandleMessage(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	panic("relax: message delivered to inert virtual node")
}
func (inertHandler) Activate(*sim.Context) {}
