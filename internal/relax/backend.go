package relax

import (
	"dpq/internal/ldb"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/seap"
	"dpq/internal/semantics"
	"dpq/internal/sim"
	"dpq/internal/skeap"
)

// Backend is the single injection interface the facade drives, whatever
// heap runs underneath: the exact Skeap/Seap protocols (via the wrappers
// below) or the relaxation engine (*Heap implements it directly).
// Priorities are always the caller's 1-based values; a wrapper owns any
// protocol-internal remapping, so the facade has exactly one code path.
type Backend interface {
	InjectInsert(host int, id prio.ElemID, p uint64, payload string) *semantics.Op
	InjectDelete(host int) *semantics.Op
	Trace() *semantics.Trace
	Done() bool
	Handlers() []sim.Handler
	Overlay() *ldb.Overlay
	SetObs(c *obs.Collector)
	NewSyncEngine() *sim.SyncEngine
	NewAsyncEngine(maxDelay float64) *sim.AsyncEngine
	NewConcEngine() *sim.ConcEngine
}

// skeapBackend adapts *skeap.Heap: Skeap takes 0-based int priorities.
type skeapBackend struct{ h *skeap.Heap }

// WrapSkeap adapts a strict Skeap heap to Backend.
func WrapSkeap(h *skeap.Heap) Backend { return skeapBackend{h} }

func (b skeapBackend) InjectInsert(host int, id prio.ElemID, p uint64, payload string) *semantics.Op {
	return b.h.InjectInsert(host, id, int(p-1), payload)
}
func (b skeapBackend) InjectDelete(host int) *semantics.Op { return b.h.InjectDelete(host) }
func (b skeapBackend) Trace() *semantics.Trace             { return b.h.Trace() }
func (b skeapBackend) Done() bool                          { return b.h.Done() }
func (b skeapBackend) Handlers() []sim.Handler             { return b.h.Handlers() }
func (b skeapBackend) Overlay() *ldb.Overlay               { return b.h.Overlay() }
func (b skeapBackend) SetObs(c *obs.Collector)             { b.h.SetObs(c) }
func (b skeapBackend) NewSyncEngine() *sim.SyncEngine      { return b.h.NewSyncEngine() }
func (b skeapBackend) NewAsyncEngine(d float64) *sim.AsyncEngine {
	return b.h.NewAsyncEngine(d)
}
func (b skeapBackend) NewConcEngine() *sim.ConcEngine { return b.h.NewConcEngine() }

// seapBackend adapts *seap.Heap, whose signature already matches.
type seapBackend struct{ h *seap.Heap }

// WrapSeap adapts a strict Seap heap to Backend.
func WrapSeap(h *seap.Heap) Backend { return seapBackend{h} }

func (b seapBackend) InjectInsert(host int, id prio.ElemID, p uint64, payload string) *semantics.Op {
	return b.h.InjectInsert(host, id, p, payload)
}
func (b seapBackend) InjectDelete(host int) *semantics.Op { return b.h.InjectDelete(host) }
func (b seapBackend) Trace() *semantics.Trace             { return b.h.Trace() }
func (b seapBackend) Done() bool                          { return b.h.Done() }
func (b seapBackend) Handlers() []sim.Handler             { return b.h.Handlers() }
func (b seapBackend) Overlay() *ldb.Overlay               { return b.h.Overlay() }
func (b seapBackend) SetObs(c *obs.Collector)             { b.h.SetObs(c) }
func (b seapBackend) NewSyncEngine() *sim.SyncEngine      { return b.h.NewSyncEngine() }
func (b seapBackend) NewAsyncEngine(d float64) *sim.AsyncEngine {
	return b.h.NewAsyncEngine(d)
}
func (b seapBackend) NewConcEngine() *sim.ConcEngine { return b.h.NewConcEngine() }

var _ Backend = (*Heap)(nil)
