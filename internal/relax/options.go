// Package relax is the relaxed-DeleteMin layer: it wraps the repo's heap
// engines behind one injection interface (Backend) and adds a relaxation
// engine that trades strict DeleteMin semantics for coordination-free
// throughput, in the spirit of the MultiQueue / "Power of Choice in
// Priority Scheduling" line of work (PAPERS.md).
//
// Two relaxation modes are implemented:
//
//   - SampleK: every DeleteMin samples k of the n per-host local heaps,
//     asks each for its minimum, and pops the best of the k answers. The
//     power-of-choice analysis bounds the expected rank of the returned
//     element by O(n/k); the analytical twin (internal/sweep) checks the
//     measured mean rank error against that envelope.
//   - BatchLocal: every host serves DeleteMins from a local prefetch
//     buffer that is refilled in batches of `Batch` elements (from the
//     host's own heap, or stolen from a sampled peer when the own heap is
//     empty) — the pbuffer idea: delivery latency decouples from refill
//     cadence, at the cost of rank error that grows with the buffer depth.
//     BatchLocal has no analytical rank bound; its error is measured, not
//     promised.
//
// Every relaxed delivery is measured: the rank-error observer
// (internal/obs) replays the trace against the sequential oracle and
// records how far each returned element was from the true minimum. A
// relaxation mode without its measured strictness curve is a hand-wave;
// here the two ship together.
package relax

import (
	"errors"
	"fmt"
)

// Mode selects the relaxation discipline.
type Mode int

// Relaxation modes. Strict (the zero value) means "no relaxation": the
// facade routes operations to the exact Skeap/Seap protocols and every
// published guarantee holds unchanged.
const (
	Strict Mode = iota
	SampleK
	BatchLocal
)

func (m Mode) String() string {
	switch m {
	case Strict:
		return "strict"
	case SampleK:
		return "samplek"
	case BatchLocal:
		return "batchlocal"
	default:
		return fmt.Sprintf("mode-%d", int(m))
	}
}

// ParseMode maps a mode name ("", "strict", "samplek", "batchlocal") to
// its constant.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "strict":
		return Strict, nil
	case "samplek":
		return SampleK, nil
	case "batchlocal":
		return BatchLocal, nil
	default:
		return 0, fmt.Errorf("relax: unknown mode %q (want strict, samplek or batchlocal)", s)
	}
}

// Options is the public relaxation knob (dpq.Options.Relaxation). The
// zero value selects strict semantics.
type Options struct {
	// Mode selects the relaxation discipline (Strict = none).
	Mode Mode
	// K is SampleK's sample size: how many per-host heaps each DeleteMin
	// probes (0 = the default of 2). Larger k means smaller rank error and
	// more probe traffic; k ≥ n degenerates to probing every host.
	K int
	// Batch is BatchLocal's prefetch refill size (0 = the default of 8).
	// Larger batches mean fewer refills and larger rank error.
	Batch int
}

// Defaults for the per-mode knobs.
const (
	DefaultK     = 2
	DefaultBatch = 8
)

// Enabled reports whether o selects any relaxation.
func (o Options) Enabled() bool { return o.Mode != Strict }

// Validate checks o for internal consistency. The per-mode knob of the
// other mode must be zero — a set-but-ignored knob is a configuration bug
// the caller should hear about, not a silent no-op.
func (o Options) Validate() error {
	switch o.Mode {
	case Strict:
		if o.K != 0 || o.Batch != 0 {
			return errors.New("relax: K and Batch require a relaxation mode (Mode is strict)")
		}
	case SampleK:
		if o.K < 0 {
			return fmt.Errorf("relax: K must be ≥ 0 (got %d)", o.K)
		}
		if o.Batch != 0 {
			return errors.New("relax: Batch is BatchLocal-only (mode is samplek)")
		}
	case BatchLocal:
		if o.Batch < 0 {
			return fmt.Errorf("relax: Batch must be ≥ 0 (got %d)", o.Batch)
		}
		if o.K != 0 {
			return errors.New("relax: K is SampleK-only (mode is batchlocal)")
		}
	default:
		return fmt.Errorf("relax: unknown mode %d", int(o.Mode))
	}
	return nil
}

// String renders the options for labels and logs.
func (o Options) String() string {
	switch o.Mode {
	case SampleK:
		k := o.K
		if k == 0 {
			k = DefaultK
		}
		return fmt.Sprintf("samplek(k=%d)", k)
	case BatchLocal:
		b := o.Batch
		if b == 0 {
			b = DefaultBatch
		}
		return fmt.Sprintf("batchlocal(batch=%d)", b)
	default:
		return "strict"
	}
}
