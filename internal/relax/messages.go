// Protocol messages of the relaxation engine. Every message carries a
// Lamport stamp: the sender's logical clock at send time. Receivers
// advance their clock past the stamp, and serialization values are minted
// from the receiver's clock — so any element's Insert is guaranteed to
// serialize before every DeleteMin that returns it, on every engine
// (synchronous, asynchronous or the network runtime), without any global
// coordination. That causal floor is all the relaxed semantics promise
// about ordering; the rest is measured rank error.
package relax

import "dpq/internal/prio"

// stamped is implemented by every relax message: the Lamport stamp set at
// send time.
type stamped interface {
	stamp() uint64
	setStamp(uint64)
}

// probeMsg asks a host for the minimum of its local heap. SampleK sends k
// of these per DeleteMin attempt; BatchLocal sends n of them as the
// all-empty survey before conceding ⊥.
type probeMsg struct {
	Stamp uint64
	Req   uint64 // requester-local id of the delete (or survey) this serves
}

func (m *probeMsg) stamp() uint64     { return m.Stamp }
func (m *probeMsg) setStamp(s uint64) { m.Stamp = s }
func (m *probeMsg) Kind() string      { return "relax/probe" }
func (m *probeMsg) Bits() int         { return 128 }

// probeReply answers a probe with the probed heap's minimum key (or
// Empty). It carries the key only — the element itself moves in popReply,
// keeping probes O(log n)-bit.
type probeReply struct {
	Stamp uint64
	Req   uint64
	Empty bool
	Min   prio.Key
}

func (m *probeReply) stamp() uint64     { return m.Stamp }
func (m *probeReply) setStamp(s uint64) { m.Stamp = s }
func (m *probeReply) Kind() string      { return "relax/probe-reply" }
func (m *probeReply) Bits() int         { return 128 + 1 + 128 }

// popMsg asks the probe winner to pop and hand over its current minimum.
// The pop is of whatever the heap's minimum is *now* — a concurrent pop
// may have taken the probed element; the reply is still the best the
// chosen heap has, which is exactly MultiQueue semantics.
type popMsg struct {
	Stamp uint64
	Req   uint64
}

func (m *popMsg) stamp() uint64     { return m.Stamp }
func (m *popMsg) setStamp(s uint64) { m.Stamp = s }
func (m *popMsg) Kind() string      { return "relax/pop" }
func (m *popMsg) Bits() int         { return 128 }

// popReply carries the popped element, or OK=false when the heap emptied
// between probe and pop (the requester re-probes).
type popReply struct {
	Stamp uint64
	Req   uint64
	OK    bool
	Elem  prio.Element
}

func (m *popReply) stamp() uint64     { return m.Stamp }
func (m *popReply) setStamp(s uint64) { m.Stamp = s }
func (m *popReply) Kind() string      { return "relax/pop-reply" }
func (m *popReply) Bits() int {
	b := 128 + 1
	if m.OK {
		b += m.Elem.Bits()
	}
	return b
}

// stealMsg asks a peer to pop up to Max elements off its local heap for
// the requester's prefetch buffer (BatchLocal refill).
type stealMsg struct {
	Stamp uint64
	Max   uint32
}

func (m *stealMsg) stamp() uint64     { return m.Stamp }
func (m *stealMsg) setStamp(s uint64) { m.Stamp = s }
func (m *stealMsg) Kind() string      { return "relax/steal" }
func (m *stealMsg) Bits() int         { return 64 + 32 }

// stealReply carries the stolen batch (possibly empty).
type stealReply struct {
	Stamp uint64
	Elems []prio.Element
}

func (m *stealReply) stamp() uint64     { return m.Stamp }
func (m *stealReply) setStamp(s uint64) { m.Stamp = s }
func (m *stealReply) Kind() string      { return "relax/steal-reply" }
func (m *stealReply) Bits() int {
	b := 64 + 32
	for _, e := range m.Elems {
		b += e.Bits()
	}
	return b
}
