package relax

// Wire registrations for the relaxation engine's messages, so relaxed
// heaps run unchanged on the TCP network runtime.

import (
	"dpq/internal/prio"
	"dpq/internal/sim"
	"dpq/internal/wire"
)

func init() {
	wire.Register("relax/probe", &probeMsg{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*probeMsg)
			w.U64(m.Stamp)
			w.U64(m.Req)
		},
		func(r *wire.Reader) sim.Message {
			return &probeMsg{Stamp: r.U64(), Req: r.U64()}
		},
		&probeMsg{Stamp: 7, Req: 3},
	)
	wire.Register("relax/probe-reply", &probeReply{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*probeReply)
			w.U64(m.Stamp)
			w.U64(m.Req)
			w.Bool(m.Empty)
			w.Key(m.Min)
		},
		func(r *wire.Reader) sim.Message {
			return &probeReply{Stamp: r.U64(), Req: r.U64(), Empty: r.Bool(), Min: r.Key()}
		},
		&probeReply{Stamp: 9, Req: 3, Min: prio.Key{Prio: 12, ID: 4}},
		&probeReply{Stamp: 2, Req: 1, Empty: true},
	)
	wire.Register("relax/pop", &popMsg{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*popMsg)
			w.U64(m.Stamp)
			w.U64(m.Req)
		},
		func(r *wire.Reader) sim.Message {
			return &popMsg{Stamp: r.U64(), Req: r.U64()}
		},
		&popMsg{Stamp: 11, Req: 3},
	)
	wire.Register("relax/pop-reply", &popReply{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*popReply)
			w.U64(m.Stamp)
			w.U64(m.Req)
			w.Bool(m.OK)
			if m.OK {
				w.Element(m.Elem)
			}
		},
		func(r *wire.Reader) sim.Message {
			m := &popReply{Stamp: r.U64(), Req: r.U64(), OK: r.Bool()}
			if m.OK {
				m.Elem = r.Element()
			}
			return m
		},
		&popReply{Stamp: 13, Req: 3, OK: true, Elem: prio.Element{ID: 8, Prio: 12, Payload: "x"}},
		&popReply{Stamp: 4, Req: 2},
	)
	wire.Register("relax/steal", &stealMsg{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*stealMsg)
			w.U64(m.Stamp)
			w.U32(m.Max)
		},
		func(r *wire.Reader) sim.Message {
			return &stealMsg{Stamp: r.U64(), Max: r.U32()}
		},
		&stealMsg{Stamp: 5, Max: 8},
	)
	wire.Register("relax/steal-reply", &stealReply{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*stealReply)
			w.U64(m.Stamp)
			w.Len(len(m.Elems))
			for _, e := range m.Elems {
				w.Element(e)
			}
		},
		func(r *wire.Reader) sim.Message {
			m := &stealReply{Stamp: r.U64()}
			n := r.Len(16) // an element needs ≥ 16 encoded bytes
			for i := 0; i < n; i++ {
				m.Elems = append(m.Elems, r.Element())
			}
			return m
		},
		&stealReply{Stamp: 6, Elems: []prio.Element{{ID: 1, Prio: 2}, {ID: 3, Prio: 4, Payload: "y"}}},
		&stealReply{Stamp: 1},
	)
}
