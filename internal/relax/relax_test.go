package relax

import (
	"reflect"
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/mathx"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/semantics"
	"dpq/internal/sim"
)

func maxRounds(n int) int { return 500 * (mathx.Log2Ceil(n) + 3) }

func runSync(t *testing.T, h *Heap, eng *sim.SyncEngine) {
	t.Helper()
	if !eng.RunUntil(h.Done, maxRounds(h.cfg.N)) {
		t.Fatalf("relaxed heap stuck: %d/%d ops done after %d rounds",
			h.trace.DoneCount(), h.trace.Len(), eng.Metrics().Rounds)
	}
}

// injectMixed injects a seeded random mix of inserts and deletes at every
// host and returns the number of inserts.
func injectMixed(h *Heap, n, opsPerHost int, seed uint64) int {
	rnd := hashutil.NewRand(seed)
	id := prio.ElemID(1)
	inserts := 0
	for host := 0; host < n; host++ {
		for i := 0; i < opsPerHost; i++ {
			if rnd.Bool(0.6) {
				h.InjectInsert(host, id, rnd.Uint64n(1000)+1, "")
				id++
				inserts++
			} else {
				h.InjectDelete(host)
			}
		}
	}
	return inserts
}

func modes() []Config {
	return []Config{
		{Mode: SampleK, K: 2},
		{Mode: SampleK, K: 4},
		{Mode: BatchLocal, Batch: 4},
	}
}

// TestRelaxedValidity: both modes must keep the relaxed-matching
// guarantee — every delivered element was inserted earlier in value
// order, unchanged, exactly once — on a mixed workload.
func TestRelaxedValidity(t *testing.T) {
	for _, cfg := range modes() {
		cfg.N, cfg.Seed = 8, 11
		h := New(cfg)
		inserts := injectMixed(h, cfg.N, 6, 99)
		runSync(t, h, h.NewSyncEngine())
		if rep := semantics.CheckRelaxedValidity(h.Trace()); !rep.Ok() {
			t.Fatalf("%v: relaxed validity violated:\n%s", cfg.Mode, rep.Error())
		}
		st := obs.TraceRankError(h.Trace())
		if st.Max >= inserts {
			t.Fatalf("%v: rank error %d impossible with %d inserts", cfg.Mode, st.Max, inserts)
		}
	}
}

// TestDrainReturnsEverything: after all inserts settle, enough deletes
// must return every element exactly once and then ⊥.
func TestDrainReturnsEverything(t *testing.T) {
	for _, cfg := range modes() {
		cfg.N, cfg.Seed = 6, 3
		h := New(cfg)
		eng := h.NewSyncEngine()
		const m = 30
		for i := 0; i < m; i++ {
			h.InjectInsert(i%cfg.N, prio.ElemID(i+1), uint64(1+(i*7)%50), "")
		}
		runSync(t, h, eng)
		for i := 0; i < m+cfg.N; i++ {
			h.InjectDelete(i % cfg.N)
		}
		runSync(t, h, eng)
		got := map[prio.ElemID]bool{}
		bottoms := 0
		for _, op := range h.Trace().Ops() {
			if op.Kind != semantics.DeleteMin {
				continue
			}
			if op.Result.Nil() {
				bottoms++
				continue
			}
			if got[op.Result.ID] {
				t.Fatalf("%v: element %d delivered twice", cfg.Mode, op.Result.ID)
			}
			got[op.Result.ID] = true
		}
		if len(got) != m || bottoms != cfg.N {
			t.Fatalf("%v: drained %d elements (+%d ⊥), want %d (+%d ⊥)",
				cfg.Mode, len(got), bottoms, m, cfg.N)
		}
		if rep := semantics.CheckRelaxedValidity(h.Trace()); !rep.Ok() {
			t.Fatalf("%v: relaxed validity violated:\n%s", cfg.Mode, rep.Error())
		}
	}
}

// TestEmptyHeapDeleteReturnsBottom: deletes against a never-filled
// structure must all come back ⊥, in both modes (this exercises the
// SampleK full-sweep escalation and the BatchLocal survey).
func TestEmptyHeapDeleteReturnsBottom(t *testing.T) {
	for _, cfg := range modes() {
		cfg.N, cfg.Seed = 5, 7
		h := New(cfg)
		for host := 0; host < cfg.N; host++ {
			h.InjectDelete(host)
		}
		runSync(t, h, h.NewSyncEngine())
		for _, op := range h.Trace().Ops() {
			if !op.Result.Nil() {
				t.Fatalf("%v: delete on empty heap returned %v", cfg.Mode, op.Result)
			}
		}
		st := obs.TraceRankError(h.Trace())
		if st.Empty != cfg.N || st.EmptyMisses != 0 {
			t.Fatalf("%v: want %d true-empty ⊥, got %+v", cfg.Mode, cfg.N, st)
		}
	}
}

// TestSingleHostServesLocally: with n=1 both modes degenerate to the
// sequential heap — zero rank error and no messages needed beyond none.
func TestSingleHostServesLocally(t *testing.T) {
	for _, cfg := range modes() {
		cfg.N, cfg.Seed = 1, 5
		h := New(cfg)
		eng := h.NewSyncEngine()
		h.InjectInsert(0, 1, 10, "a")
		h.InjectInsert(0, 2, 5, "b")
		runSync(t, h, eng)
		h.InjectDelete(0)
		h.InjectDelete(0)
		h.InjectDelete(0)
		runSync(t, h, eng)
		st := obs.TraceRankError(h.Trace())
		if st.Max != 0 || st.Deletes != 2 || st.Empty != 1 {
			t.Fatalf("%v: single-host run not exact: %+v", cfg.Mode, st)
		}
	}
}

// TestInsertSerializesBeforeDelivery: the Lamport stamping must place
// every element's Insert before the DeleteMin returning it in value
// order — that is what makes the rank replay well defined.
func TestInsertSerializesBeforeDelivery(t *testing.T) {
	for _, cfg := range modes() {
		cfg.N, cfg.Seed = 8, 13
		h := New(cfg)
		injectMixed(h, cfg.N, 8, 17)
		runSync(t, h, h.NewSyncEngine())
		insVal := map[prio.ElemID]int64{}
		for _, op := range h.Trace().Ops() {
			if op.Kind == semantics.Insert {
				insVal[op.Elem.ID] = op.Value
			}
		}
		for _, op := range h.Trace().Ops() {
			if op.Kind != semantics.DeleteMin || op.Result.Nil() {
				continue
			}
			iv, ok := insVal[op.Result.ID]
			if !ok || iv >= op.Value {
				t.Fatalf("%v: element %d delivered (value %d) not after its insert (value %d)",
					cfg.Mode, op.Result.ID, op.Value, iv)
			}
		}
	}
}

// TestSameSeedDeterminism: identical configuration and injection must
// reproduce identical rank stats and engine metrics run over run.
func TestSameSeedDeterminism(t *testing.T) {
	for _, cfg := range modes() {
		cfg.N, cfg.Seed = 8, 21
		run := func() (obs.RankStats, sim.Metrics) {
			h := New(cfg)
			injectMixed(h, cfg.N, 6, 31)
			eng := h.NewSyncEngine()
			runSync(t, h, eng)
			return obs.TraceRankError(h.Trace()), *eng.Metrics()
		}
		st1, m1 := run()
		st2, m2 := run()
		if st1 != st2 {
			t.Fatalf("%v: rank stats differ across identical runs: %+v vs %+v", cfg.Mode, st1, st2)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("%v: metrics differ across identical runs:\n%+v\n%+v", cfg.Mode, m1, m2)
		}
	}
}

// TestAsyncEngineValidity: the Lamport stamping must keep relaxed
// validity (and the insert-before-delivery floor) under adversarial
// asynchronous delivery too.
func TestAsyncEngineValidity(t *testing.T) {
	for _, cfg := range modes() {
		cfg.N, cfg.Seed = 8, 29
		h := New(cfg)
		injectMixed(h, cfg.N, 6, 43)
		eng := h.NewAsyncEngine(3.0)
		if !eng.RunUntil(h.Done, 200000) {
			t.Fatalf("%v: async run stuck", cfg.Mode)
		}
		if rep := semantics.CheckRelaxedValidity(h.Trace()); !rep.Ok() {
			t.Fatalf("%v: relaxed validity violated under async delivery:\n%s", cfg.Mode, rep.Error())
		}
	}
}

// TestSampleKRankErrorTracksK: for *sequential* deletes (one in flight,
// one issuing host — the regime the power-of-choice analysis describes)
// the mean rank error must not grow with k, and a full sweep (k = n) must
// be exact. Pipelined deletes are deliberately excluded: concurrent
// full-sweep requesters all pick the same victim host and drain it deep
// (the thundering-herd effect), so monotonicity in k only holds without
// contention.
func TestSampleKRankErrorTracksK(t *testing.T) {
	mean := func(k int) float64 {
		h := New(Config{N: 8, Seed: 2, Mode: SampleK, K: k, MaxInFlight: 1})
		eng := h.NewSyncEngine()
		const m = 400
		for i := 0; i < m; i++ {
			h.InjectInsert(i%8, prio.ElemID(i+1), uint64(1+(i*13)%997), "")
		}
		runSync(t, h, eng)
		for i := 0; i < m; i++ {
			h.InjectDelete(0)
		}
		runSync(t, h, eng)
		return obs.TraceRankError(h.Trace()).Mean
	}
	m2, m8 := mean(2), mean(8)
	if m8 > m2 {
		t.Fatalf("mean rank error grew with k: k=2 → %.2f, k=8 (full sweep) → %.2f", m2, m8)
	}
	if m8 != 0 {
		t.Fatalf("sequential full-sweep deletes must be exact, got mean rank error %.2f", m8)
	}
}

// TestOptionsValidate pins the Validate contract: cross-mode knobs are
// configuration errors, not silent no-ops.
func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{},
		{Mode: SampleK}, {Mode: SampleK, K: 4},
		{Mode: BatchLocal}, {Mode: BatchLocal, Batch: 16},
	}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", o, err)
		}
	}
	invalid := []Options{
		{K: 2},
		{Batch: 8},
		{Mode: SampleK, Batch: 8},
		{Mode: SampleK, K: -1},
		{Mode: BatchLocal, K: 2},
		{Mode: BatchLocal, Batch: -3},
		{Mode: Mode(99)},
	}
	for _, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("%+v: expected a validation error", o)
		}
	}
}

// TestParseModeRoundTrip pins mode names used by flags and sweep cells.
func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{Strict, SampleK, BatchLocal} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseMode(""); err != nil || m != Strict {
		t.Fatalf("empty mode must parse as strict")
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode must not parse")
	}
}
