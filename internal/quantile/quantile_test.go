package quantile

import (
	"math"
	"sort"
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/ldb"
	"dpq/internal/prio"
	"dpq/internal/sim"
)

func loadEstimator(n, m, k int, seed uint64) (*Estimator, []prio.Element, *sim.SyncEngine) {
	ov := ldb.New(n, hashutil.New(seed))
	e := New(ov, hashutil.New(seed+1), k)
	rnd := hashutil.NewRand(seed + 2)
	elems := make([]prio.Element, m)
	for i := 0; i < m; i++ {
		elems[i] = prio.Element{ID: prio.ElemID(i + 1), Prio: prio.Priority(rnd.Uint64n(1 << 20))}
		e.Load(sim.NodeID(rnd.Intn(ov.NumVirtual())), elems[i])
	}
	return e, elems, e.NewSyncEngine(seed + 3)
}

func trueRank(elems []prio.Element, est prio.Element) int {
	cp := append([]prio.Element(nil), elems...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	for i, el := range cp {
		if el == est {
			return i + 1
		}
	}
	return -1
}

func TestMedianEstimateAccuracy(t *testing.T) {
	const m = 2000
	e, elems, eng := loadEstimator(16, m, 256, 1)
	e.Start(eng.Context(e.Anchor()), 0.5)
	if !eng.RunUntil(e.Done, 100000) {
		t.Fatal("estimator stuck")
	}
	res := e.Result()
	if !res.Found || res.Count != m {
		t.Fatalf("result %+v", res)
	}
	rank := trueRank(elems, res.Estimate)
	if rank < 0 {
		t.Fatal("estimate is not one of the elements")
	}
	// Rank error O(N/√k): with k=256 and N=2000, tolerate ~6·N/√k ≈ 750…
	// use a tighter empirical bound of N/4.
	if math.Abs(float64(rank)-float64(m)/2) > float64(m)/4 {
		t.Fatalf("median estimate rank %d far from %d", rank, m/2)
	}
}

func TestAccuracyImprovesWithK(t *testing.T) {
	const m = 4000
	errAt := func(k int) float64 {
		var total float64
		for s := uint64(0); s < 5; s++ {
			e, elems, eng := loadEstimator(8, m, k, 10+s)
			e.Start(eng.Context(e.Anchor()), 0.5)
			eng.RunUntil(e.Done, 100000)
			rank := trueRank(elems, e.Result().Estimate)
			total += math.Abs(float64(rank) - float64(m)/2)
		}
		return total / 5
	}
	small, large := errAt(16), errAt(1024)
	if large >= small {
		t.Fatalf("error must shrink with k: k=16 → %.0f, k=1024 → %.0f", small, large)
	}
}

func TestExactWhenKExceedsN(t *testing.T) {
	// A sketch larger than the population is the full population: the
	// estimate is the exact quantile.
	const m = 100
	e, elems, eng := loadEstimator(4, m, 1000, 20)
	e.Start(eng.Context(e.Anchor()), 0.25)
	eng.RunUntil(e.Done, 100000)
	res := e.Result()
	if res.Sampled != m {
		t.Fatalf("sampled %d of %d", res.Sampled, m)
	}
	if rank := trueRank(elems, res.Estimate); rank != m/4 {
		t.Fatalf("exact quantile rank %d, want %d", rank, m/4)
	}
}

func TestSingleRoundCost(t *testing.T) {
	// One gather: rounds ≈ tree height, messages ≈ #virtual nodes.
	e, _, eng := loadEstimator(64, 1000, 64, 30)
	e.Start(eng.Context(e.Anchor()), 0.9)
	if !eng.RunUntil(e.Done, 100000) {
		t.Fatal("stuck")
	}
	ov := ldb.New(64, hashutil.New(30))
	if eng.Metrics().Rounds > 3*ov.TreeHeight()+4 {
		t.Fatalf("one phase took %d rounds (height %d)", eng.Metrics().Rounds, ov.TreeHeight())
	}
	if eng.Metrics().Messages > int64(2*3*64) {
		t.Fatalf("one phase used %d messages", eng.Metrics().Messages)
	}
}

func TestEmptyPopulation(t *testing.T) {
	ov := ldb.New(4, hashutil.New(40))
	e := New(ov, hashutil.New(41), 8)
	eng := e.NewSyncEngine(42)
	e.Start(eng.Context(e.Anchor()), 0.5)
	if !eng.RunUntil(e.Done, 100000) {
		t.Fatal("stuck")
	}
	if e.Result().Found || e.Result().Count != 0 {
		t.Fatalf("empty population result %+v", e.Result())
	}
}

func TestBottomKMergeProperty(t *testing.T) {
	// Merging in any grouping must equal the bottom-k of the union.
	mk := func(tags ...uint64) []tagged {
		out := make([]tagged, len(tags))
		for i, tg := range tags {
			out[i] = tagged{tag: tg, elem: prio.Element{ID: prio.ElemID(tg)}}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].tag < out[j].tag })
		return out
	}
	a := mk(5, 9, 2)
	b := mk(7, 1)
	c := mk(8, 3, 6)
	k := 4
	left := mergeBottomK(k, mergeBottomK(k, a, b), c)
	right := mergeBottomK(k, a, mergeBottomK(k, b, c))
	flat := mergeBottomK(k, a, b, c)
	for i := range flat {
		if left[i].tag != flat[i].tag || right[i].tag != flat[i].tag {
			t.Fatalf("merge not associative: %v %v %v", left, right, flat)
		}
	}
	if len(flat) != k || flat[0].tag != 1 || flat[3].tag != 5 {
		t.Fatalf("bottom-k wrong: %v", flat)
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	ov := ldb.New(2, hashutil.New(50))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for k=0")
			}
		}()
		New(ov, hashutil.New(51), 0)
	}()
	e := New(ov, hashutil.New(52), 4)
	eng := e.NewSyncEngine(53)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for φ out of range")
		}
	}()
	e.Start(eng.Context(e.Anchor()), 0)
}
