// Package quantile implements a one-phase approximate quantile estimator
// over the aggregation tree, as a comparison point for KSelect: §1.3
// discusses Haeupler, Mohapatra & Su [HMS18], who obtain approximate
// quantiles by sampling before refining to exactness. This estimator is
// the sampling half alone: every node contributes a bottom-k sketch of
// its elements (the k elements with the smallest pseudorandom tag —
// uniform without replacement, and mergeable: the union of bottom-k
// sketches is the bottom-k sketch of the union), so a single gather gives
// the anchor a uniform sample of all N elements plus the exact count.
// The φ-quantile estimate is the ⌈φ·k⌉-th smallest sampled element; its
// rank error is O(N/√k) w.h.p.
//
// Experiment E21 contrasts this with KSelect: one O(log n)-round phase
// with O(k·log n)-bit messages and approximate answers, versus KSelect's
// many phases with O(log n)-bit messages and an exact answer.
package quantile

import (
	"sort"

	"dpq/internal/aggtree"
	"dpq/internal/hashutil"
	"dpq/internal/ldb"
	"dpq/internal/prio"
	"dpq/internal/sim"
)

const tagSketch aggtree.Tag = 40

// tagged pairs an element with its pseudorandom sketch tag.
type tagged struct {
	tag  uint64
	elem prio.Element
}

// sketchVal is the mergeable bottom-k sketch plus the exact count.
type sketchVal struct {
	Count int64
	Items []tagged // ascending by tag, ≤ k entries
}

// Bits accounts the count and each sketched element (tag + key).
func (v *sketchVal) Bits() int { return 64 + len(v.Items)*(64+128) }

// Result is the estimator's outcome.
type Result struct {
	Estimate prio.Element // the sampled element closest to the quantile
	Count    int64        // exact total number of elements
	Sampled  int          // sketch size actually gathered
	Found    bool
}

// Estimator drives one-phase quantile estimation over an overlay whose
// virtual nodes hold elements.
type Estimator struct {
	ov     *ldb.Overlay
	hasher hashutil.Hasher
	k      int
	nodes  []*node

	seq    uint64
	phi    float64
	result Result
	done   bool
}

type node struct {
	est    *Estimator
	runner *aggtree.Runner
	elems  []prio.Element
}

// New creates an estimator with sketch size k over the overlay.
func New(ov *ldb.Overlay, hasher hashutil.Hasher, k int) *Estimator {
	if k < 1 {
		panic("quantile: sketch size must be positive")
	}
	e := &Estimator{ov: ov, hasher: hasher, k: k}
	e.nodes = make([]*node, ov.NumVirtual())
	for i := range e.nodes {
		nd := &node{est: e, runner: aggtree.NewRunner(ov)}
		nd.runner.Register(tagSketch, nd.proto())
		e.nodes[i] = nd
	}
	return e
}

// Load places elements at a virtual node.
func (e *Estimator) Load(id sim.NodeID, elems ...prio.Element) {
	e.nodes[id].elems = append(e.nodes[id].elems, elems...)
}

// Handlers returns the per-virtual-node sim handlers.
func (e *Estimator) Handlers() []sim.Handler {
	hs := make([]sim.Handler, len(e.nodes))
	for i, nd := range e.nodes {
		hs[i] = &handler{n: nd, id: sim.NodeID(i)}
	}
	return hs
}

// NewSyncEngine wires the estimator into a synchronous engine.
func (e *Estimator) NewSyncEngine(seed uint64) *sim.SyncEngine {
	groups, group := e.ov.Group()
	return sim.Build(sim.Spec{Handlers: e.Handlers(), Seed: seed, Groups: groups, Group: group}).(*sim.SyncEngine)
}

// Start estimates the φ-quantile (φ ∈ (0,1]) from the anchor's context.
func (e *Estimator) Start(ctx *sim.Context, phi float64) {
	if phi <= 0 || phi > 1 {
		panic("quantile: φ out of (0,1]")
	}
	e.phi = phi
	e.done = false
	e.seq++
	anchor := e.nodes[e.ov.Anchor]
	anchor.runner.Start(ctx, e.ov.Info(e.ov.Anchor), tagSketch, e.seq, nil)
}

// Done reports completion; Result returns the estimate.
func (e *Estimator) Done() bool     { return e.done }
func (e *Estimator) Result() Result { return e.result }

// Anchor returns the anchor id.
func (e *Estimator) Anchor() sim.NodeID { return e.ov.Anchor }

// tagOf derives the element's sketch tag from the public hash family.
func (e *Estimator) tagOf(el prio.Element) uint64 {
	return e.hasher.Pair(0x9e3779b9, uint64(el.ID))
}

// mergeBottomK merges ascending-by-tag sketches, keeping the k smallest
// tags overall.
func mergeBottomK(k int, sketches ...[]tagged) []tagged {
	var all []tagged
	for _, s := range sketches {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].tag < all[j].tag })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func (n *node) proto() *aggtree.Proto {
	return &aggtree.Proto{
		Name: "quantile-sketch",
		Own: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, _ aggtree.Value) aggtree.Value {
			items := make([]tagged, 0, len(n.elems))
			for _, el := range n.elems {
				items = append(items, tagged{tag: n.est.tagOf(el), elem: el})
			}
			return &sketchVal{
				Count: int64(len(n.elems)),
				Items: mergeBottomK(n.est.k, items),
			}
		},
		Combine: func(self *ldb.VInfo, seq uint64, _ aggtree.Value, own aggtree.Value, kids []aggtree.KidValue) aggtree.Value {
			out := own.(*sketchVal)
			sketches := [][]tagged{out.Items}
			for _, kv := range kids {
				s := kv.V.(*sketchVal)
				out.Count += s.Count
				sketches = append(sketches, s.Items)
			}
			out.Items = mergeBottomK(n.est.k, sketches...)
			return out
		},
		AtRoot: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, _ aggtree.Value, combined aggtree.Value) aggtree.Value {
			e := n.est
			s := combined.(*sketchVal)
			e.result = Result{Count: s.Count, Sampled: len(s.Items)}
			if len(s.Items) > 0 {
				// Order the uniform sample by element key and pick the
				// φ-fraction entry.
				sample := make([]prio.Element, len(s.Items))
				for i, it := range s.Items {
					sample[i] = it.elem
				}
				sort.Slice(sample, func(i, j int) bool { return sample[i].Less(sample[j]) })
				idx := int(e.phi*float64(len(sample))) - 1
				if idx < 0 {
					idx = 0
				}
				e.result.Estimate = sample[idx]
				e.result.Found = true
			}
			e.done = true
			return nil
		},
		GatherOnly: true,
	}
}

type handler struct {
	n  *node
	id sim.NodeID
}

func (h *handler) HandleMessage(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	if !h.n.runner.Handle(ctx, h.n.est.ov.Info(h.id), from, msg) {
		panic("quantile: unexpected message")
	}
}

func (h *handler) Activate(*sim.Context) {}
