package aggtree

import (
	"dpq/internal/mathx"
	"dpq/internal/prio"
)

// Scalar aggregate values shared by the protocols. Bit accounting follows
// Lemma 3.8 / Lemma 5.5: an integer in O(poly(n)) costs O(log n) bits and
// an element key costs O(log n) bits.

// IntVal is a single integer aggregate (counts, sums, sizes).
type IntVal int64

// Bits returns the encoding size of the integer.
func (v IntVal) Bits() int {
	x := int64(v)
	if x < 0 {
		x = -x
	}
	return 1 + mathx.BitsFor(uint64(x))
}

// Int2Val is a pair of integers (e.g. the (k′, k″) removal counts of
// KSelect Phase 1, or the (L, R) rank vector of Phase 2c).
type Int2Val struct{ A, B int64 }

// Bits returns the encoding size of the pair.
func (v Int2Val) Bits() int { return IntVal(v.A).Bits() + IntVal(v.B).Bits() }

// KeyVal is a single element key (priority plus tiebreaker id).
type KeyVal prio.Key

// Bits returns the encoding size of the key.
func (v KeyVal) Bits() int { return prio.Key(v).Bits() }

// KeyRangeVal is a closed key interval [Lo, Hi] (the [P_min, P_max] window
// of KSelect Phase 1 and the [key(c_l), key(c_r)] window of Phase 2c).
type KeyRangeVal struct{ Lo, Hi prio.Key }

// Bits returns the encoding size of the range.
func (v KeyRangeVal) Bits() int { return v.Lo.Bits() + v.Hi.Bits() }

// IntervalVal is a half-open-free closed integer interval [Lo, Hi];
// empty when Hi < Lo. Used for position intervals.
type IntervalVal struct{ Lo, Hi int64 }

// Bits returns the encoding size of the interval.
func (v IntervalVal) Bits() int { return IntVal(v.Lo).Bits() + IntVal(v.Hi).Bits() }

// Size returns the cardinality of the interval.
func (v IntervalVal) Size() int64 {
	if v.Hi < v.Lo {
		return 0
	}
	return v.Hi - v.Lo + 1
}

// NilVal is an empty aggregate for protocols that only need the tree
// synchronization (pure barriers / go-ahead broadcasts).
type NilVal struct{}

// Bits returns the (constant) encoding size.
func (NilVal) Bits() int { return 1 }
