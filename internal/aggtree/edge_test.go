package aggtree

import (
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/ldb"
	"dpq/internal/sim"
)

// paramsProto echoes the anchor's start parameters back from every node,
// verifying parameter propagation through StartMsg.
func TestParamsPropagation(t *testing.T) {
	n := 9
	var got []int64
	proto := &Proto{
		Name: "echo-params",
		Own: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value) Value {
			got = append(got, int64(params.(IntVal)))
			return IntVal(0)
		},
		Combine: func(self *ldb.VInfo, seq uint64, params Value, own Value, kids []KidValue) Value {
			return IntVal(0)
		},
		AtRoot: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, combined Value) Value {
			return nil
		},
		GatherOnly: true,
	}
	ov, eng, nodes := buildNetwork(n, 777, func(r *Runner) { r.Register(5, proto) })
	nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 5, 3, IntVal(42))
	eng.RunUntil(func() bool { return len(got) == 3*n }, 10000)
	if len(got) != 3*n {
		t.Fatalf("Own ran at %d of %d nodes", len(got), 3*n)
	}
	for _, v := range got {
		if v != 42 {
			t.Fatalf("params corrupted: %v", got)
		}
	}
}

// TestNilKidPartsNotSent: a Split returning nil for a child must not send
// a DownMsg to it.
func TestNilKidPartsNotSent(t *testing.T) {
	n := 6
	received := 0
	proto := &Proto{
		Name: "nil-parts",
		Own: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value) Value {
			return IntVal(1)
		},
		Combine: func(self *ldb.VInfo, seq uint64, params Value, own Value, kids []KidValue) Value {
			return IntVal(1)
		},
		AtRoot: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, combined Value) Value {
			return NilVal{}
		},
		Split: func(self *ldb.VInfo, seq uint64, params Value, down Value, own Value, kids []KidValue) (Value, []Value) {
			// Only the anchor's own part is delivered; children get nil.
			parts := make([]Value, len(kids))
			return NilVal{}, parts
		},
		OnOwn: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, ownPart Value) {
			received++
		},
	}
	ov, eng, nodes := buildNetwork(n, 778, func(r *Runner) { r.Register(6, proto) })
	nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 6, 0, nil)
	for i := 0; i < 2000; i++ {
		eng.Step()
	}
	if received != 1 {
		t.Fatalf("OnOwn ran %d times; only the anchor should scatter to itself", received)
	}
}

// TestUnknownTagFallsThrough: a runner without the message's tag must
// return false so a second runner can claim it.
func TestUnknownTagFallsThrough(t *testing.T) {
	ov := ldb.New(2, hashutil.New(779))
	r := NewRunner(ov)
	r.Register(1, &Proto{Name: "known"})
	msg := &UpMsg{Tag: 99, Seq: 0, V: IntVal(1)}
	if r.Handle(nil, ov.Info(ov.Anchor), 0, msg) {
		t.Fatal("unknown tag must not be consumed")
	}
	start := &StartMsg{Tag: 42}
	if r.Handle(nil, ov.Info(ov.Anchor), 0, start) {
		t.Fatal("unknown start tag must not be consumed")
	}
	down := &DownMsg{Tag: 17, V: NilVal{}}
	if r.Handle(nil, ov.Info(ov.Anchor), 0, down) {
		t.Fatal("unknown down tag must not be consumed")
	}
}

// TestDoubleStartPanics: starting the same (tag, seq) twice is a protocol
// error.
func TestDoubleStartPanics(t *testing.T) {
	ov, eng, nodes := buildNetwork(1, 780, func(r *Runner) {
		r.Register(1, &Proto{
			Name: "dup",
			Own: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value) Value {
				return IntVal(0)
			},
			Combine: func(self *ldb.VInfo, seq uint64, params Value, own Value, kids []KidValue) Value {
				return IntVal(0)
			},
			AtRoot: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, combined Value) Value {
				return nil
			},
			GatherOnly: true,
		})
	})
	nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 1, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 1, 0, nil)
}
