// Package aggtree implements the aggregation phases of §2.2 on the tree
// embedded in the LDB (Lemma 2.2): values flow from the leaves to the
// anchor, being combined at every inner node, and results flow back down,
// being decomposed at every inner node. One gather–scatter exchange costs
// O(height) = O(log n) rounds w.h.p.
//
// The package provides a single reusable primitive, the Proto/Runner pair:
// a Proto describes one aggregation protocol (how a node contributes, how
// contributions combine, what the anchor computes, and how the result is
// split among children); a Runner multiplexes any number of Protos and
// sequential instances (Seq) of each over one node's tree links. All of
// Skeap's phases 1–3, Seap's phases and KSelect's aggregation steps are
// instances of this primitive, exactly as the paper describes them.
package aggtree

import (
	"fmt"

	"dpq/internal/ldb"
	"dpq/internal/sim"
)

// Value is a protocol-defined aggregate carried in tree messages. Its Bits
// method feeds the engines' message-size accounting.
type Value = sim.Message

// KidValue is a child's contribution, remembered by inner nodes between
// the gather and the scatter (Skeap Phase 1 "memorizes the sub-batches…
// as it needs them to perform the correct interval decomposition").
type KidValue struct {
	From sim.NodeID
	V    Value
}

// Proto describes one gather–scatter protocol. Combine, AtRoot and Split
// are pure with respect to the tree; all protocol state lives in the
// closures' owner.
type Proto struct {
	// Name is used in diagnostics.
	Name string
	// Own returns the node's contribution when the instance starts at
	// that node (params are the anchor's start parameters).
	Own func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value) Value
	// Combine merges the node's own contribution with its children's.
	Combine func(self *ldb.VInfo, seq uint64, params Value, own Value, kids []KidValue) Value
	// AtRoot consumes the fully combined value at the anchor and returns
	// the value to scatter down, or nil for a gather-only instance.
	AtRoot func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, combined Value) Value
	// Split decomposes a down value into the node's own part and one part
	// per remembered child (same order as kids). Nil parts are not sent.
	Split func(self *ldb.VInfo, seq uint64, params Value, down Value, own Value, kids []KidValue) (ownPart Value, kidParts []Value)
	// OnOwn consumes the node's own part of the scatter.
	OnOwn func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, ownPart Value)
	// GatherOnly marks protocols whose AtRoot never scatters.
	GatherOnly bool
}

// Tag identifies a registered Proto within a Runner.
type Tag uint8

// instance key: one protocol may run sequential instances (per iteration).
type key struct {
	tag Tag
	seq uint64
}

type state struct {
	params Value
	begun  bool
	own    Value
	kids   []KidValue
	sentUp bool
	want   int // children count at begin time
}

// StartMsg begins instance (Tag, Seq) at the receiving subtree: the node
// contributes Own, forwards the start to its children and awaits their
// UpMsgs.
type StartMsg struct {
	Tag    Tag
	Seq    uint64
	Params Value
}

// Kind names the message for instrumentation, per instance tag.
func (m *StartMsg) Kind() string { return fmt.Sprintf("tree/start[%d]", m.Tag) }

// Bits accounts a small header plus the parameters.
func (m *StartMsg) Bits() int {
	b := 16 + 64
	if m.Params != nil {
		b += m.Params.Bits()
	}
	return b
}

// UpMsg carries a combined contribution from a child to its parent.
type UpMsg struct {
	Tag Tag
	Seq uint64
	V   Value
}

// Kind names the message for instrumentation, per instance tag.
func (m *UpMsg) Kind() string { return fmt.Sprintf("tree/up[%d]", m.Tag) }

// Bits accounts a small header plus the value.
func (m *UpMsg) Bits() int { return 16 + 64 + m.V.Bits() }

// DownMsg carries a child's share of the scattered result.
type DownMsg struct {
	Tag Tag
	Seq uint64
	V   Value
}

// Kind names the message for instrumentation, per instance tag.
func (m *DownMsg) Kind() string { return fmt.Sprintf("tree/down[%d]", m.Tag) }

// Bits accounts a small header plus the value.
func (m *DownMsg) Bits() int { return 16 + 64 + m.V.Bits() }

// Runner executes registered Protos at one virtual node. Protocol handlers
// delegate StartMsg/UpMsg/DownMsg to it.
type Runner struct {
	ov *ldb.Overlay
	// protos is a tiny linear-scan table rather than a map: every virtual
	// node registers a handful of tags at most, and one Runner exists per
	// node, so map headers would dominate the idle footprint at large n.
	protos []tagProto
	// states is likewise a linear-scan table: a node has at most a couple
	// of live instances, and unlike a map the slice's footprint shrinks
	// back to a header once instances complete — at million-node scale a
	// per-node map that has ever been touched would dominate steady-state
	// memory.
	states []instState
	// floors suppress instances below a per-tag sequence floor: after a
	// partial-failure reset every message of an aborted instance — late
	// starts queued at a crashed peer, stale ups, stale downs — must be
	// dropped, or it would resurrect state for an iteration whose
	// operations have already been re-buffered elsewhere.
	floors  map[Tag]uint64
	dropped int64
}

type tagProto struct {
	tag Tag
	p   *Proto
}

type instState struct {
	k  key
	st *state
}

// NewRunner creates a Runner for the virtual node whose VInfo the handler
// passes on every call. The states and floors maps are allocated lazily on
// first write: most nodes of a large simulation never anchor an instance
// or see a reset.
func NewRunner(ov *ldb.Overlay) *Runner {
	return &Runner{ov: ov}
}

// NewRunners bulk-allocates the Runners of n virtual nodes in one backing
// array — one allocation instead of n at construction, which matters when
// the simulation has millions of nodes. Callers take &rs[i] per node; the
// returned slice must not be reallocated afterwards.
func NewRunners(ov *ldb.Overlay, n int) []Runner {
	rs := make([]Runner, n)
	for i := range rs {
		rs[i].ov = ov
	}
	return rs
}

// AbortBelow abandons every instance of tag with seq < floor and suppresses
// their future messages: states are deleted and later Start/Up/Down frames
// for those instances are consumed silently. Callers must re-buffer any
// operations the aborted instances carried — the Runner only forgets.
// Floors are monotone; a lower floor than the current one is a no-op.
func (r *Runner) AbortBelow(tag Tag, floor uint64) {
	if floor <= r.floors[tag] {
		return
	}
	if r.floors == nil {
		r.floors = make(map[Tag]uint64)
	}
	r.floors[tag] = floor
	kept := r.states[:0]
	for _, is := range r.states {
		if !(is.k.tag == tag && is.k.seq < floor) {
			kept = append(kept, is)
		}
	}
	clear(r.states[len(kept):])
	r.states = kept
}

// Floor returns the current suppression floor for tag (0 = none).
func (r *Runner) Floor(tag Tag) uint64 { return r.floors[tag] }

// Dropped returns how many messages the floors have suppressed.
func (r *Runner) Dropped() int64 { return r.dropped }

// below reports (and counts) whether an instance seq is floored for tag.
func (r *Runner) below(tag Tag, seq uint64) bool {
	if seq < r.floors[tag] {
		r.dropped++
		return true
	}
	return false
}

// Register binds tag to proto on this node. All nodes must register the
// same protos (they are the publicly known protocol description).
func (r *Runner) Register(tag Tag, p *Proto) {
	if r.lookup(tag) != nil {
		panic(fmt.Sprintf("aggtree: duplicate tag %d", tag))
	}
	r.protos = append(r.protos, tagProto{tag: tag, p: p})
}

// lookup returns the proto registered for tag, or nil.
func (r *Runner) lookup(tag Tag) *Proto {
	for i := range r.protos {
		if r.protos[i].tag == tag {
			return r.protos[i].p
		}
	}
	return nil
}

// Start initiates instance (tag, seq) from the anchor. It must be called
// in the anchor's context.
func (r *Runner) Start(ctx *sim.Context, self *ldb.VInfo, tag Tag, seq uint64, params Value) {
	if self.Parent != sim.None {
		panic("aggtree: Start called at a non-anchor node")
	}
	r.begin(ctx, self, tag, seq, params)
}

// Handle processes one tree message; it reports whether the message was an
// aggtree message with a tag registered on this Runner (false lets the
// caller dispatch other message types or other Runners).
func (r *Runner) Handle(ctx *sim.Context, self *ldb.VInfo, from sim.NodeID, msg sim.Message) bool {
	switch m := msg.(type) {
	case *StartMsg:
		if r.lookup(m.Tag) == nil {
			return false
		}
		if r.below(m.Tag, m.Seq) {
			return true
		}
		r.begin(ctx, self, m.Tag, m.Seq, m.Params)
	case *UpMsg:
		if r.lookup(m.Tag) == nil {
			return false
		}
		if r.below(m.Tag, m.Seq) {
			return true
		}
		st := r.state(m.Tag, m.Seq)
		st.kids = append(st.kids, KidValue{From: from, V: m.V})
		r.maybeCombine(ctx, self, m.Tag, m.Seq, st)
	case *DownMsg:
		if r.lookup(m.Tag) == nil {
			return false
		}
		if r.below(m.Tag, m.Seq) {
			return true
		}
		if st := r.findState(key{m.Tag, m.Seq}); st == nil || !st.begun {
			// An assignment for an instance this node never began: a peer's
			// reliable transport retransmitted a pre-crash frame into a
			// restarted process. Without gather state it cannot be split,
			// and the instance is below the reset floor about to land — drop
			// it (and any stale kid-value stub) rather than corrupt state.
			// In one incarnation this cannot happen: the parent's StartMsg
			// precedes its DownMsg on the same FIFO channel.
			r.dropState(key{m.Tag, m.Seq})
			r.dropped++
			return true
		}
		r.scatter(ctx, self, m.Tag, m.Seq, m.V)
	default:
		return false
	}
	return true
}

func (r *Runner) proto(tag Tag) *Proto {
	p := r.lookup(tag)
	if p == nil {
		panic(fmt.Sprintf("aggtree: unknown tag %d", tag))
	}
	return p
}

func (r *Runner) state(tag Tag, seq uint64) *state {
	k := key{tag, seq}
	if st := r.findState(k); st != nil {
		return st
	}
	st := &state{}
	r.states = append(r.states, instState{k: k, st: st})
	return st
}

// findState returns the live state for k, or nil.
func (r *Runner) findState(k key) *state {
	for i := range r.states {
		if r.states[i].k == k {
			return r.states[i].st
		}
	}
	return nil
}

// dropState removes the state for k, preserving the order of the rest.
func (r *Runner) dropState(k key) {
	for i := range r.states {
		if r.states[i].k == k {
			r.states = append(r.states[:i], r.states[i+1:]...)
			clear(r.states[len(r.states):cap(r.states)])
			return
		}
	}
}

func (r *Runner) begin(ctx *sim.Context, self *ldb.VInfo, tag Tag, seq uint64, params Value) {
	p := r.proto(tag)
	st := r.state(tag, seq)
	if st.begun {
		panic(fmt.Sprintf("aggtree: %s instance %d started twice", p.Name, seq))
	}
	st.begun = true
	st.params = params
	st.want = len(self.Children)
	st.own = p.Own(ctx, self, seq, params)
	for _, c := range self.Children {
		ctx.Send(c, &StartMsg{Tag: tag, Seq: seq, Params: params})
	}
	r.maybeCombine(ctx, self, tag, seq, st)
}

func (r *Runner) maybeCombine(ctx *sim.Context, self *ldb.VInfo, tag Tag, seq uint64, st *state) {
	if !st.begun || st.sentUp || len(st.kids) < st.want {
		return
	}
	p := r.proto(tag)
	combined := p.Combine(self, seq, st.params, st.own, st.kids)
	st.sentUp = true
	if self.Parent == sim.None {
		down := p.AtRoot(ctx, self, seq, st.params, combined)
		if down == nil {
			r.dropState(key{tag, seq})
			return
		}
		r.scatter(ctx, self, tag, seq, down)
		return
	}
	ctx.Send(self.Parent, &UpMsg{Tag: tag, Seq: seq, V: combined})
	if p.GatherOnly {
		r.dropState(key{tag, seq})
	}
}

func (r *Runner) scatter(ctx *sim.Context, self *ldb.VInfo, tag Tag, seq uint64, down Value) {
	p := r.proto(tag)
	st := r.state(tag, seq)
	if !st.begun {
		panic(fmt.Sprintf("aggtree: %s scatter at node %d for un-begun instance seq %d (floor %d, kids %d)", p.Name, self.ID, seq, r.floors[tag], len(st.kids)))
	}
	ownPart, kidParts := p.Split(self, seq, st.params, down, st.own, st.kids)
	if len(kidParts) != len(st.kids) {
		panic(fmt.Sprintf("aggtree: %s Split returned %d parts for %d children", p.Name, len(kidParts), len(st.kids)))
	}
	for i, kv := range st.kids {
		if kidParts[i] != nil {
			ctx.Send(kv.From, &DownMsg{Tag: tag, Seq: seq, V: kidParts[i]})
		}
	}
	if p.OnOwn != nil {
		p.OnOwn(ctx, self, seq, st.params, ownPart)
	}
	r.dropState(key{tag, seq})
}
