package aggtree

import (
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/ldb"
	"dpq/internal/mathx"
	"dpq/internal/sim"
)

// aggNode hosts a Runner for testing.
type aggNode struct {
	ov *ldb.Overlay
	r  *Runner
}

func (n *aggNode) HandleMessage(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	if !n.r.Handle(ctx, n.ov.Info(ctx.ID()), from, msg) {
		panic("unexpected message")
	}
}

func (n *aggNode) Activate(*sim.Context) {}

func buildNetwork(n int, seed uint64, register func(r *Runner)) (*ldb.Overlay, *sim.SyncEngine, []*aggNode) {
	ov := ldb.New(n, hashutil.New(seed))
	nodes := make([]*aggNode, ov.NumVirtual())
	handlers := make([]sim.Handler, ov.NumVirtual())
	for i := range handlers {
		nodes[i] = &aggNode{ov: ov, r: NewRunner(ov)}
		register(nodes[i].r)
		handlers[i] = nodes[i]
	}
	groups, group := ov.Group()
	eng := sim.Build(sim.Spec{Handlers: handlers, Seed: 1, Groups: groups, Group: group}).(*sim.SyncEngine)
	return ov, eng, nodes
}

// countProto counts participating virtual nodes — the example of §2.2.
func countProto(result *int64, done *bool) *Proto {
	return &Proto{
		Name: "count",
		Own: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value) Value {
			return IntVal(1)
		},
		Combine: func(self *ldb.VInfo, seq uint64, params Value, own Value, kids []KidValue) Value {
			t := own.(IntVal)
			for _, kv := range kids {
				t += kv.V.(IntVal)
			}
			return t
		},
		AtRoot: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, combined Value) Value {
			*result = int64(combined.(IntVal))
			*done = true
			return nil
		},
		GatherOnly: true,
	}
}

func TestCountAggregation(t *testing.T) {
	for _, n := range []int{1, 2, 5, 32} {
		var result int64
		var done bool
		ov, eng, nodes := buildNetwork(n, uint64(n)+100, func(r *Runner) {
			r.Register(1, countProto(&result, &done))
		})
		nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 1, 0, nil)
		ok := eng.RunUntil(func() bool { return done }, 100*(mathx.Log2Ceil(n)+2))
		if !ok {
			t.Fatalf("n=%d: aggregation never completed", n)
		}
		if result != int64(3*n) {
			t.Fatalf("n=%d: counted %d virtual nodes, want %d", n, result, 3*n)
		}
	}
}

func TestAggregationRounds(t *testing.T) {
	// One gather costs O(height) rounds.
	for _, n := range []int{8, 64, 256} {
		var result int64
		var done bool
		ov, eng, nodes := buildNetwork(n, uint64(n)+7, func(r *Runner) {
			r.Register(1, countProto(&result, &done))
		})
		nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 1, 0, nil)
		eng.RunUntil(func() bool { return done }, 10000)
		if result != int64(3*n) {
			t.Fatalf("count=%d", result)
		}
		if eng.Metrics().Rounds > 3*ov.TreeHeight()+4 {
			t.Fatalf("n=%d: %d rounds for height %d", n, eng.Metrics().Rounds, ov.TreeHeight())
		}
	}
}

// scatterProto gives every node a distinct share [lo,hi) of [0, total):
// the interval-decomposition pattern of Skeap Phase 3.
type share struct{ lo, hi int64 }

func TestGatherScatterDecomposition(t *testing.T) {
	n := 24
	ov := ldb.New(n, hashutil.New(55))
	shares := make(map[sim.NodeID]share)
	received := 0

	proto := &Proto{
		Name: "alloc",
		Own: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value) Value {
			// Each virtual node wants (id mod 3) + 1 slots.
			return IntVal(int64(self.ID)%3 + 1)
		},
		Combine: func(self *ldb.VInfo, seq uint64, params Value, own Value, kids []KidValue) Value {
			t := own.(IntVal)
			for _, kv := range kids {
				t += kv.V.(IntVal)
			}
			return t
		},
		AtRoot: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, combined Value) Value {
			return IntervalVal{Lo: 0, Hi: int64(combined.(IntVal)) - 1}
		},
		Split: func(self *ldb.VInfo, seq uint64, params Value, down Value, own Value, kids []KidValue) (Value, []Value) {
			iv := down.(IntervalVal)
			lo := iv.Lo
			ownPart := IntervalVal{Lo: lo, Hi: lo + int64(own.(IntVal)) - 1}
			lo = ownPart.Hi + 1
			parts := make([]Value, len(kids))
			for i, kv := range kids {
				parts[i] = IntervalVal{Lo: lo, Hi: lo + int64(kv.V.(IntVal)) - 1}
				lo = lo + int64(kv.V.(IntVal))
			}
			if lo != iv.Hi+1 {
				panic("split does not cover")
			}
			return ownPart, parts
		},
		OnOwn: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, params Value, ownPart Value) {
			iv := ownPart.(IntervalVal)
			shares[self.ID] = share{lo: iv.Lo, hi: iv.Hi + 1}
			received++
		},
	}

	nodes := make([]*aggNode, ov.NumVirtual())
	handlers := make([]sim.Handler, ov.NumVirtual())
	for i := range handlers {
		nodes[i] = &aggNode{ov: ov, r: NewRunner(ov)}
		nodes[i].r.Register(2, proto)
		handlers[i] = nodes[i]
	}
	groups, group := ov.Group()
	eng := sim.Build(sim.Spec{Handlers: handlers, Seed: 1, Groups: groups, Group: group}).(*sim.SyncEngine)
	nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 2, 0, nil)
	ok := eng.RunUntil(func() bool { return received == 3*n }, 10000)
	if !ok {
		t.Fatalf("scatter incomplete: %d/%d", received, 3*n)
	}

	// Shares must partition [0, total) without gaps or overlaps.
	var total int64
	for i := 0; i < 3*n; i++ {
		total += int64(i)%3 + 1
	}
	covered := make([]int, total)
	for id, s := range shares {
		want := int64(id)%3 + 1
		if s.hi-s.lo != want {
			t.Fatalf("node %d got %d slots, want %d", id, s.hi-s.lo, want)
		}
		for p := s.lo; p < s.hi; p++ {
			covered[p]++
		}
	}
	for p, c := range covered {
		if c != 1 {
			t.Fatalf("position %d covered %d times", p, c)
		}
	}
}

func TestSequentialInstances(t *testing.T) {
	// The same proto must run as independent sequential instances.
	n := 6
	ov := ldb.New(n, hashutil.New(77))
	var result int64
	var done bool
	nodes := make([]*aggNode, ov.NumVirtual())
	handlers := make([]sim.Handler, ov.NumVirtual())
	for i := range handlers {
		nodes[i] = &aggNode{ov: ov, r: NewRunner(ov)}
		nodes[i].r.Register(1, countProto(&result, &done))
		handlers[i] = nodes[i]
	}
	groups, group := ov.Group()
	eng := sim.Build(sim.Spec{Handlers: handlers, Seed: 1, Groups: groups, Group: group}).(*sim.SyncEngine)
	for seq := uint64(0); seq < 3; seq++ {
		done = false
		nodes[ov.Anchor].r.Start(eng.Context(ov.Anchor), ov.Info(ov.Anchor), 1, seq, nil)
		if !eng.RunUntil(func() bool { return done }, 10000) {
			t.Fatalf("instance %d stuck", seq)
		}
		if result != int64(3*n) {
			t.Fatalf("instance %d: count=%d", seq, result)
		}
	}
}

func TestDuplicateTagPanics(t *testing.T) {
	r := NewRunner(nil)
	r.Register(1, &Proto{Name: "a"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Register(1, &Proto{Name: "b"})
}

func TestStartAtNonAnchorPanics(t *testing.T) {
	ov := ldb.New(2, hashutil.New(1))
	r := NewRunner(ov)
	r.Register(1, &Proto{Name: "x"})
	var notAnchor sim.NodeID
	for i := range ov.V {
		if sim.NodeID(i) != ov.Anchor {
			notAnchor = sim.NodeID(i)
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Start(nil, ov.Info(notAnchor), 1, 0, nil)
}

func TestValueBits(t *testing.T) {
	if IntVal(0).Bits() < 1 || IntVal(-5).Bits() <= IntVal(0).Bits() {
		t.Fatal("IntVal bit accounting")
	}
	if (Int2Val{A: 3, B: 4}).Bits() != IntVal(3).Bits()+IntVal(4).Bits() {
		t.Fatal("Int2Val bit accounting")
	}
	if (IntervalVal{Lo: 1, Hi: 0}).Size() != 0 || (IntervalVal{Lo: 1, Hi: 3}).Size() != 3 {
		t.Fatal("IntervalVal size")
	}
	if (NilVal{}).Bits() != 1 {
		t.Fatal("NilVal bits")
	}
	up := &UpMsg{Tag: 1, Seq: 0, V: IntVal(1)}
	if up.Bits() <= IntVal(1).Bits() {
		t.Fatal("UpMsg header not accounted")
	}
	st := &StartMsg{Tag: 1}
	if st.Bits() <= 0 {
		t.Fatal("StartMsg bits")
	}
	dn := &DownMsg{Tag: 1, V: NilVal{}}
	if dn.Bits() <= 1 {
		t.Fatal("DownMsg bits")
	}
}
