package aggtree

// Wire registrations for the tree messages and the shared scalar values.
// The tree messages carry nested protocol values, so their codecs recurse
// through the registry.

import (
	"dpq/internal/prio"
	"dpq/internal/sim"
	"dpq/internal/wire"
)

func init() {
	wire.Register("tree/start", &StartMsg{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*StartMsg)
			w.U8(uint8(m.Tag))
			w.U64(m.Seq)
			w.Message(m.Params) // nilable: parameterless instances
		},
		func(r *wire.Reader) sim.Message {
			m := &StartMsg{}
			m.Tag = Tag(r.U8())
			m.Seq = r.U64()
			m.Params = r.Message()
			return m
		},
		&StartMsg{Tag: 1, Seq: 3},
		&StartMsg{Tag: 2, Seq: 0, Params: IntVal(17)},
	)
	wire.Register("tree/up", &UpMsg{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*UpMsg)
			w.U8(uint8(m.Tag))
			w.U64(m.Seq)
			w.Message(m.V)
		},
		func(r *wire.Reader) sim.Message {
			m := &UpMsg{}
			m.Tag = Tag(r.U8())
			m.Seq = r.U64()
			m.V = r.MustMessage()
			return m
		},
		&UpMsg{Tag: 1, Seq: 7, V: Int2Val{A: -4, B: 9}},
	)
	wire.Register("tree/down", &DownMsg{},
		func(w *wire.Writer, msg sim.Message) {
			m := msg.(*DownMsg)
			w.U8(uint8(m.Tag))
			w.U64(m.Seq)
			w.Message(m.V)
		},
		func(r *wire.Reader) sim.Message {
			m := &DownMsg{}
			m.Tag = Tag(r.U8())
			m.Seq = r.U64()
			m.V = r.MustMessage()
			return m
		},
		&DownMsg{Tag: 3, Seq: 2, V: IntervalVal{Lo: 1, Hi: 0}},
	)

	wire.Register("val/int", IntVal(0),
		func(w *wire.Writer, msg sim.Message) { w.I64(int64(msg.(IntVal))) },
		func(r *wire.Reader) sim.Message { return IntVal(r.I64()) },
		IntVal(0), IntVal(-1), IntVal(1<<40),
	)
	wire.Register("val/int2", Int2Val{},
		func(w *wire.Writer, msg sim.Message) {
			v := msg.(Int2Val)
			w.I64(v.A)
			w.I64(v.B)
		},
		func(r *wire.Reader) sim.Message {
			return Int2Val{A: r.I64(), B: r.I64()}
		},
		Int2Val{A: 5, B: -7},
	)
	wire.Register("val/key", KeyVal{},
		func(w *wire.Writer, msg sim.Message) { w.Key(prio.Key(msg.(KeyVal))) },
		func(r *wire.Reader) sim.Message { return KeyVal(r.Key()) },
		KeyVal(prio.Key{Prio: 3, ID: 101}),
	)
	wire.Register("val/keyrange", KeyRangeVal{},
		func(w *wire.Writer, msg sim.Message) {
			v := msg.(KeyRangeVal)
			w.Key(v.Lo)
			w.Key(v.Hi)
		},
		func(r *wire.Reader) sim.Message {
			return KeyRangeVal{Lo: r.Key(), Hi: r.Key()}
		},
		KeyRangeVal{Lo: prio.Key{Prio: 1, ID: 2}, Hi: prio.Key{Prio: 8, ID: 4}},
	)
	wire.Register("val/interval", IntervalVal{},
		func(w *wire.Writer, msg sim.Message) {
			v := msg.(IntervalVal)
			w.I64(v.Lo)
			w.I64(v.Hi)
		},
		func(r *wire.Reader) sim.Message {
			return IntervalVal{Lo: r.I64(), Hi: r.I64()}
		},
		IntervalVal{Lo: 10, Hi: 20},
		IntervalVal{Lo: 1, Hi: 0},
	)
	wire.Register("val/nil", NilVal{},
		func(w *wire.Writer, msg sim.Message) {},
		func(r *wire.Reader) sim.Message { return NilVal{} },
		NilVal{},
	)
}
