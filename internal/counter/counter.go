// Package counter implements distributed counting — one of the
// applications §1 names for the Skueue/Skeap machinery. A fetch-and-
// increment counter is exactly the degenerate heap position assignment:
// nodes buffer increments, the aggregation tree gathers the counts, the
// anchor hands out a contiguous value interval, and the interval is
// decomposed back down so every increment receives a unique, gap-free
// value — sequentially consistent, in O(log n) rounds per batch, without
// a shared memory cell.
package counter

import (
	"sync"

	"dpq/internal/aggtree"
	"dpq/internal/hashutil"
	"dpq/internal/ldb"
	"dpq/internal/sim"
)

const tagCount aggtree.Tag = 1

// valueShare is the scattered value interval.
type valueShare struct{ Lo, Hi int64 }

// Bits accounts two integers.
func (v *valueShare) Bits() int { return 2 * 64 }

type pending struct {
	done func(value int64)
}

type node struct {
	c      *Counter
	runner *aggtree.Runner

	mu     sync.Mutex
	buf    []pending
	snaps  map[uint64][]pending
	anchor struct {
		next     int64
		inFlight bool
		nextSeq  uint64
		batches  int
	}
}

// Counter is a distributed fetch-and-increment counter over n processes.
type Counter struct {
	ov    *ldb.Overlay
	nodes []*node

	mu        sync.Mutex
	issued    int64
	completed int64
}

// New creates a counter over n processes. Values start at 1.
func New(n int, seed uint64) *Counter {
	c := &Counter{ov: ldb.New(n, hashutil.New(seed))}
	c.nodes = make([]*node, c.ov.NumVirtual())
	for i := range c.nodes {
		nd := &node{c: c, runner: aggtree.NewRunner(c.ov), snaps: make(map[uint64][]pending)}
		nd.anchor.next = 1
		nd.runner.Register(tagCount, nd.proto())
		c.nodes[i] = nd
	}
	return c
}

// Handlers returns the per-virtual-node sim handlers.
func (c *Counter) Handlers() []sim.Handler {
	hs := make([]sim.Handler, len(c.nodes))
	for i, nd := range c.nodes {
		hs[i] = &handler{n: nd, id: sim.NodeID(i)}
	}
	return hs
}

// NewSyncEngine wires the counter into a synchronous engine.
func (c *Counter) NewSyncEngine(seed uint64) *sim.SyncEngine {
	groups, group := c.ov.Group()
	return sim.Build(sim.Spec{Handlers: c.Handlers(), Seed: seed, Groups: groups, Group: group}).(*sim.SyncEngine)
}

// Increment requests a fetch-and-increment at the given process; done is
// invoked with the assigned value when the batch containing it completes.
func (c *Counter) Increment(host int, done func(value int64)) {
	nd := c.nodes[ldb.VID(host, ldb.Middle)]
	nd.mu.Lock()
	nd.buf = append(nd.buf, pending{done: done})
	nd.mu.Unlock()
	c.mu.Lock()
	c.issued++
	c.mu.Unlock()
}

// Done reports whether every requested increment received its value.
func (c *Counter) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed == c.issued
}

// Batches returns how many aggregation batches the anchor processed.
func (c *Counter) Batches() int { return c.nodes[c.ov.Anchor].anchor.batches }

func (c *Counter) complete() {
	c.mu.Lock()
	c.completed++
	c.mu.Unlock()
}

type handler struct {
	n  *node
	id sim.NodeID
}

func (h *handler) HandleMessage(ctx *sim.Context, from sim.NodeID, msg sim.Message) {
	if !h.n.runner.Handle(ctx, h.n.c.ov.Info(h.id), from, msg) {
		panic("counter: unexpected message")
	}
}

func (h *handler) Activate(ctx *sim.Context) {
	n := h.n
	if h.id != n.c.ov.Anchor || n.anchor.inFlight {
		return
	}
	n.anchor.inFlight = true
	n.anchor.batches++
	seq := n.anchor.nextSeq
	n.anchor.nextSeq++
	n.runner.Start(ctx, n.c.ov.Info(h.id), tagCount, seq, nil)
}

func (n *node) proto() *aggtree.Proto {
	return &aggtree.Proto{
		Name: "counter",
		Own: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, _ aggtree.Value) aggtree.Value {
			n.mu.Lock()
			snap := n.buf
			n.buf = nil
			n.mu.Unlock()
			n.snaps[seq] = snap
			return aggtree.IntVal(len(snap))
		},
		Combine: func(self *ldb.VInfo, seq uint64, _ aggtree.Value, own aggtree.Value, kids []aggtree.KidValue) aggtree.Value {
			t := own.(aggtree.IntVal)
			for _, kv := range kids {
				t += kv.V.(aggtree.IntVal)
			}
			return t
		},
		AtRoot: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, _ aggtree.Value, combined aggtree.Value) aggtree.Value {
			k := int64(combined.(aggtree.IntVal))
			lo := n.anchor.next
			n.anchor.next += k
			n.anchor.inFlight = false
			return &valueShare{Lo: lo, Hi: lo + k - 1}
		},
		Split: func(self *ldb.VInfo, seq uint64, _ aggtree.Value, down aggtree.Value, own aggtree.Value, kids []aggtree.KidValue) (aggtree.Value, []aggtree.Value) {
			share := down.(*valueShare)
			lo := share.Lo
			ownC := int64(own.(aggtree.IntVal))
			ownPart := &valueShare{Lo: lo, Hi: lo + ownC - 1}
			lo += ownC
			parts := make([]aggtree.Value, len(kids))
			for i, kv := range kids {
				kc := int64(kv.V.(aggtree.IntVal))
				parts[i] = &valueShare{Lo: lo, Hi: lo + kc - 1}
				lo += kc
			}
			if lo != share.Hi+1 {
				panic("counter: interval decomposition does not cover")
			}
			return ownPart, parts
		},
		OnOwn: func(ctx *sim.Context, self *ldb.VInfo, seq uint64, _ aggtree.Value, ownPart aggtree.Value) {
			share := ownPart.(*valueShare)
			snap := n.snaps[seq]
			delete(n.snaps, seq)
			if int64(len(snap)) != share.Hi-share.Lo+1 {
				panic("counter: share does not match snapshot")
			}
			for i, p := range snap {
				if p.done != nil {
					p.done(share.Lo + int64(i))
				}
				n.c.complete()
			}
		},
	}
}
