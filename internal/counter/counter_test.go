package counter

import (
	"sort"
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/mathx"
)

func TestUniqueGapFreeValues(t *testing.T) {
	c := New(8, 1)
	eng := c.NewSyncEngine(2)
	var got []int64
	rnd := hashutil.NewRand(3)
	const total = 100
	for i := 0; i < total; i++ {
		c.Increment(rnd.Intn(8), func(v int64) { got = append(got, v) })
	}
	if !eng.RunUntil(c.Done, 100000) {
		t.Fatal("counter stuck")
	}
	if len(got) != total {
		t.Fatalf("completed %d of %d", len(got), total)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("values not gap-free 1..%d: %v", total, got[:i+1])
		}
	}
}

func TestLocalOrderWithinNode(t *testing.T) {
	// Two increments at the same node must receive increasing values in
	// issue order (local consistency of the interval split).
	c := New(4, 4)
	eng := c.NewSyncEngine(5)
	var first, second int64
	c.Increment(2, func(v int64) { first = v })
	c.Increment(2, func(v int64) { second = v })
	if !eng.RunUntil(c.Done, 100000) {
		t.Fatal("counter stuck")
	}
	if first >= second {
		t.Fatalf("issue order violated: %d then %d", first, second)
	}
}

func TestContinuousIncrements(t *testing.T) {
	c := New(6, 6)
	eng := c.NewSyncEngine(7)
	rnd := hashutil.NewRand(8)
	issued := 0
	for round := 0; round < 400; round++ {
		if round < 300 && round%2 == 0 {
			c.Increment(rnd.Intn(6), nil)
			issued++
		}
		eng.Step()
		if round > 300 && c.Done() {
			break
		}
	}
	eng.RunUntil(c.Done, 100000)
	if !c.Done() {
		t.Fatal("increments incomplete")
	}
	if c.Batches() < 2 {
		t.Fatalf("anchor should batch repeatedly, got %d", c.Batches())
	}
}

func TestBatchRoundsLogarithmic(t *testing.T) {
	// One batch of n increments completes in O(log n) rounds — the same
	// shape as Skeap's Cor. 3.6, with a far smaller constant (no DHT).
	for _, n := range []int{16, 128, 1024} {
		c := New(n, uint64(n))
		eng := c.NewSyncEngine(uint64(n) + 1)
		for host := 0; host < n; host++ {
			c.Increment(host, nil)
		}
		if !eng.RunUntil(c.Done, 100000) {
			t.Fatalf("n=%d stuck", n)
		}
		bound := 30 * (mathx.Log2Ceil(n) + 2)
		if eng.Metrics().Rounds > bound {
			t.Fatalf("n=%d: %d rounds > %d", n, eng.Metrics().Rounds, bound)
		}
	}
}

func TestValuesAcrossBatchesMonotone(t *testing.T) {
	c := New(3, 9)
	eng := c.NewSyncEngine(10)
	var batch1, batch2 []int64
	for i := 0; i < 5; i++ {
		c.Increment(i%3, func(v int64) { batch1 = append(batch1, v) })
	}
	if !eng.RunUntil(c.Done, 100000) {
		t.Fatal("batch 1 stuck")
	}
	for i := 0; i < 5; i++ {
		c.Increment(i%3, func(v int64) { batch2 = append(batch2, v) })
	}
	if !eng.RunUntil(c.Done, 100000) {
		t.Fatal("batch 2 stuck")
	}
	max1 := int64(0)
	for _, v := range batch1 {
		if v > max1 {
			max1 = v
		}
	}
	for _, v := range batch2 {
		if v <= max1 {
			t.Fatalf("batch 2 value %d not after batch 1 max %d", v, max1)
		}
	}
}
