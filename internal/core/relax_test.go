package core

import (
	"strings"
	"testing"

	"dpq/internal/relax"
)

// TestRelaxedPQEndToEnd: a relaxed PQ must drive through the facade like
// a strict one — Drain, Results, Verify (relaxed validity), RankError —
// for both protocols, both modes, and every engine kind.
func TestRelaxedPQEndToEnd(t *testing.T) {
	for _, proto := range []Protocol{Skeap, Seap} {
		for _, rx := range []relax.Options{
			{Mode: relax.SampleK, K: 2},
			{Mode: relax.BatchLocal, Batch: 4},
		} {
			for _, kind := range []EngineKind{EngineSync, EngineSyncParallel, EngineAsync, EngineConc} {
				pq, err := New(proto, Options{Nodes: 4, Seed: 5, Engine: kind, Relaxation: rx})
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", proto, rx, kind, err)
				}
				if !pq.Relaxed() || pq.RelaxHeap() == nil {
					t.Fatalf("%v/%v/%v: PQ not relaxed", proto, rx, kind)
				}
				maxP := uint64(4)
				if proto == Seap {
					maxP = 1000
				}
				for host := 0; host < 4; host++ {
					pq.At(host).Insert(uint64(host)%maxP+1, "a").Insert((uint64(host)*3)%maxP+1, "b")
				}
				for host := 0; host < 4; host++ {
					pq.At(host).DeleteMin().DeleteMin()
				}
				ds, err := pq.Drain()
				if err != nil {
					t.Fatalf("%v/%v/%v: drain: %v", proto, rx, kind, err)
				}
				found := 0
				for _, d := range ds {
					if d.Found {
						found++
						if d.Priority < 1 || d.Priority > maxP {
							t.Fatalf("%v/%v/%v: delivered priority %d out of [1,%d]", proto, rx, kind, d.Priority, maxP)
						}
					}
				}
				if found != 8 {
					t.Fatalf("%v/%v/%v: %d/8 deletes delivered", proto, rx, kind, found)
				}
				if err := pq.Verify(); err != nil {
					t.Fatalf("%v/%v/%v: verify: %v", proto, rx, kind, err)
				}
				st := pq.RankError()
				if st.Deletes != 8 {
					t.Fatalf("%v/%v/%v: rank stats %+v", proto, rx, kind, st)
				}
			}
		}
	}
}

// TestStrictPQReportsZeroRankError: the observer doubles as a strictness
// proof for unrelaxed runs.
func TestStrictPQReportsZeroRankError(t *testing.T) {
	pq, err := New(Seap, Options{Nodes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		pq.At(i % 4).Insert(uint64(i*31%97+1), "")
	}
	for i := 0; i < 8; i++ {
		pq.At(i % 4).DeleteMin()
	}
	if _, err := pq.Drain(); err != nil {
		t.Fatal(err)
	}
	st := pq.RankError()
	if st.Max != 0 || st.Mean != 0 || st.Deletes != 8 {
		t.Fatalf("strict run must have zero rank error, got %+v", st)
	}
	if pq.Relaxed() {
		t.Fatal("strict PQ must not report Relaxed")
	}
}

// TestRelaxationOptionValidation: invalid combinations must be rejected
// at New, with messages that name the offending knob.
func TestRelaxationOptionValidation(t *testing.T) {
	cases := []struct {
		proto Protocol
		opts  Options
		want  string
	}{
		{Seap, Options{Nodes: 4, Relaxation: relax.Options{K: 2}}, "relaxation mode"},
		{Seap, Options{Nodes: 4, Relaxation: relax.Options{Mode: relax.SampleK, Batch: 8}}, "BatchLocal-only"},
		{Skeap, Options{Nodes: 4, MaxHeap: true, Relaxation: relax.Options{Mode: relax.SampleK}}, "MaxHeap"},
		{Seap, Options{Nodes: 4, SeqConsistent: true, Relaxation: relax.Options{Mode: relax.BatchLocal}}, "SeqConsistent"},
	}
	for _, c := range cases {
		_, err := New(c.proto, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: got error %v, want mention of %q", c.opts.Relaxation, err, c.want)
		}
	}
}
