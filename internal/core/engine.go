package core

import (
	"errors"
	"fmt"
	"time"

	"dpq/internal/mathx"
	"dpq/internal/prio"
	"dpq/internal/sim"
)

// EngineKind selects the execution engine that drives a PQ
// (Options.Engine).
type EngineKind int

// Engine kinds.
const (
	// EngineSync is the default: the serial synchronous round engine.
	// Deterministic per seed.
	EngineSync EngineKind = iota
	// EngineSyncParallel partitions every round across a worker pool and
	// merges the results in node order; metrics, congestion accounting and
	// traces are byte-identical to EngineSync for the same seed.
	// Options.Workers sizes the pool.
	EngineSyncParallel
	// EngineAsync delivers each message after a random bounded delay
	// (Options.MaxDelay), modeling an asynchronous network. Deterministic
	// per seed but not round-structured.
	EngineAsync
	// EngineConc runs every node as a real goroutine with channel inboxes.
	// A PQ on this engine supports exactly one batch→Drain cycle.
	EngineConc
)

func (k EngineKind) String() string {
	switch k {
	case EngineSync:
		return "sync"
	case EngineSyncParallel:
		return "sync-parallel"
	case EngineAsync:
		return "async"
	case EngineConc:
		return "conc"
	default:
		return fmt.Sprintf("engine-%d", int(k))
	}
}

// concTimeout bounds the wall-clock time one EngineConc Drain may take.
const concTimeout = 30 * time.Second

// validateEngine checks the engine-selection fields of opts.
func validateEngine(opts Options) error {
	switch opts.Engine {
	case EngineSync, EngineSyncParallel, EngineAsync, EngineConc:
	default:
		return fmt.Errorf("core: unknown engine kind %d", int(opts.Engine))
	}
	if opts.Workers < 0 {
		return fmt.Errorf("core: Workers must be ≥ 0 (got %d)", opts.Workers)
	}
	if opts.Workers != 0 && opts.Engine != EngineSyncParallel {
		return fmt.Errorf("core: Workers is only valid with EngineSyncParallel (engine is %v)", opts.Engine)
	}
	if opts.MaxDelay < 0 {
		return fmt.Errorf("core: MaxDelay must be ≥ 0 (got %v)", opts.MaxDelay)
	}
	if opts.MaxDelay != 0 && opts.Engine != EngineAsync {
		return fmt.Errorf("core: MaxDelay is only valid with EngineAsync (engine is %v)", opts.Engine)
	}
	return nil
}

// buildEngine constructs the engine selected by opts for the freshly built
// heap inside pq.
func (pq *PQ) buildEngine(opts Options) {
	pq.kind = opts.Engine
	switch opts.Engine {
	case EngineSync, EngineSyncParallel:
		pq.eng = pq.be.NewSyncEngine()
		if opts.Engine == EngineSyncParallel {
			pq.eng.SetParallel(opts.Workers)
		}
	case EngineAsync:
		d := opts.MaxDelay
		if d == 0 {
			d = 2
		}
		pq.async = pq.be.NewAsyncEngine(d)
	case EngineConc:
		pq.conc = pq.be.NewConcEngine()
	}
}

// runBatch drives the selected engine until every issued operation
// completed or the budget is exhausted. budget ≤ 0 picks a generous
// default, measured in rounds (sync engines) or scaled to events (async).
func (pq *PQ) runBatch(budget int) (bool, error) {
	if budget <= 0 {
		budget = 20000 * (mathx.Log2Ceil(pq.nodes) + 3)
	}
	switch pq.kind {
	case EngineSync, EngineSyncParallel:
		return pq.eng.RunUntil(pq.done, budget), nil
	case EngineAsync:
		// One synchronous round corresponds to roughly one activation per
		// node, so scale the round budget to an event budget.
		return pq.async.RunUntil(pq.done, budget*(pq.nodes+1)), nil
	default: // EngineConc
		if pq.concUsed {
			if pq.done() {
				return true, nil // nothing new was issued
			}
			return false, errors.New("core: EngineConc supports a single batch→Drain cycle; create a new PQ for the next batch")
		}
		pq.concUsed = true
		return pq.conc.Run(pq.done, concTimeout), nil
	}
}

// At returns a builder that issues operations at the given host. It panics
// when host is out of range, like every per-host entry point.
func (pq *PQ) At(host int) Host {
	pq.checkHost(host)
	return Host{pq: pq, host: host}
}

// Host issues operations at one fixed process. Builders are values — keep
// as many as you like, interleave them freely; operations take effect in
// program order at their host when the next Drain runs the network.
type Host struct {
	pq   *PQ
	host int
}

// Insert issues Insert(e) at the host with a 1-based priority (1 = most
// prioritized) and returns the builder for chaining. Use InsertID when the
// assigned element id is needed.
func (h Host) Insert(priority uint64, payload string) Host {
	h.pq.insert(h.host, priority, payload)
	return h
}

// InsertID is Insert returning the assigned element id instead of the
// builder.
func (h Host) InsertID(priority uint64, payload string) prio.ElemID {
	return h.pq.insert(h.host, priority, payload)
}

// DeleteMin issues DeleteMin() at the host and returns the builder for
// chaining; the outcome appears in the next Drain's deliveries.
func (h Host) DeleteMin() Host {
	h.pq.deleteMin(h.host)
	return h
}

// Drain drives the network until every operation issued so far completed,
// then returns the outcomes of the DeleteMins that completed since the
// previous Drain, in serialization order. It errors when the batch cannot
// complete (budget exhausted, or a second batch on EngineConc).
func (pq *PQ) Drain() ([]Delivery, error) {
	ok, err := pq.runBatch(0)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: %v engine did not complete the batch within its budget", pq.kind)
	}
	all := pq.Results()
	out := all[pq.drained:]
	pq.drained = len(all)
	return out, nil
}

// EngineKind reports which engine drives the PQ.
func (pq *PQ) EngineKind() EngineKind { return pq.kind }

// AsyncEngine exposes the asynchronous engine (nil unless EngineAsync).
func (pq *PQ) AsyncEngine() *sim.AsyncEngine { return pq.async }

// ConcEngine exposes the concurrent engine (nil unless EngineConc).
func (pq *PQ) ConcEngine() *sim.ConcEngine { return pq.conc }
