package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestEngineOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the expected error
	}{
		{"workers on sync", Options{Nodes: 2, Workers: 4}, "Workers"},
		{"workers on async", Options{Nodes: 2, Engine: EngineAsync, Workers: 4}, "Workers"},
		{"negative workers", Options{Nodes: 2, Engine: EngineSyncParallel, Workers: -1}, "Workers"},
		{"maxdelay on sync", Options{Nodes: 2, MaxDelay: 3}, "MaxDelay"},
		{"maxdelay on conc", Options{Nodes: 2, Engine: EngineConc, MaxDelay: 3}, "MaxDelay"},
		{"negative maxdelay", Options{Nodes: 2, Engine: EngineAsync, MaxDelay: -1}, "MaxDelay"},
		{"unknown engine", Options{Nodes: 2, Engine: EngineKind(99)}, "unknown engine"},
	}
	for _, tc := range cases {
		if _, err := New(Seap, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
	// The valid combinations must construct.
	for _, opts := range []Options{
		{Nodes: 2},
		{Nodes: 2, Engine: EngineSyncParallel},
		{Nodes: 2, Engine: EngineSyncParallel, Workers: 3},
		{Nodes: 2, Engine: EngineAsync, MaxDelay: 1.5},
		{Nodes: 2, Engine: EngineConc},
	} {
		pq, err := New(Seap, opts)
		if err != nil {
			t.Fatalf("valid options %+v rejected: %v", opts, err)
		}
		if pq.EngineKind() != opts.Engine {
			t.Fatalf("EngineKind() = %v, want %v", pq.EngineKind(), opts.Engine)
		}
	}
}

// TestBatchAPIAllEngines drives the builder + Drain cycle on every engine
// kind and both protocols; every engine must deliver the same multiset in
// priority order and pass verification.
func TestBatchAPIAllEngines(t *testing.T) {
	kinds := []EngineKind{EngineSync, EngineSyncParallel, EngineAsync, EngineConc}
	for _, proto := range []Protocol{Skeap, Seap} {
		for _, kind := range kinds {
			opts := Options{Nodes: 4, Priorities: 3, Seed: 11, Engine: kind}
			if kind == EngineSyncParallel {
				opts.Workers = 2
			}
			pq, err := New(proto, opts)
			if err != nil {
				t.Fatalf("%v/%v: %v", proto, kind, err)
			}
			pq.At(0).Insert(2, "mid").Insert(1, "hi")
			pq.At(1).Insert(3, "low")
			pq.At(2).DeleteMin().DeleteMin()
			pq.At(3).DeleteMin()
			got, err := pq.Drain()
			if err != nil {
				t.Fatalf("%v/%v: Drain: %v", proto, kind, err)
			}
			want := []string{"hi", "mid", "low"}
			if len(got) != 3 {
				t.Fatalf("%v/%v: %d deliveries, want 3: %+v", proto, kind, len(got), got)
			}
			for i, d := range got {
				if !d.Found || d.Payload != want[i] {
					t.Fatalf("%v/%v: deliveries %+v, want payload order %v", proto, kind, got, want)
				}
			}
			if err := pq.Verify(); err != nil {
				t.Fatalf("%v/%v: %v", proto, kind, err)
			}
			if pq.Metrics().Messages == 0 {
				t.Fatalf("%v/%v: no messages accounted", proto, kind)
			}
		}
	}
}

// TestDrainIncremental checks each Drain returns only the deliveries new
// since the previous one.
func TestDrainIncremental(t *testing.T) {
	pq, err := New(Seap, Options{Nodes: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pq.At(0).Insert(5, "a").DeleteMin()
	first, err := pq.Drain()
	if err != nil || len(first) != 1 || first[0].Payload != "a" {
		t.Fatalf("first drain: %+v, %v", first, err)
	}
	// An empty batch drains to nothing.
	empty, err := pq.Drain()
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty drain: %+v, %v", empty, err)
	}
	pq.At(1).Insert(9, "b")
	pq.At(2).DeleteMin().DeleteMin()
	second, err := pq.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 2 || second[0].Payload != "b" || second[1].Found {
		t.Fatalf("second drain must be only the new deliveries (b, then ⊥): %+v", second)
	}
	if all := pq.Results(); len(all) != 3 {
		t.Fatalf("Results must keep the full history: %+v", all)
	}
}

// TestConcSingleCycle checks the one-batch contract of EngineConc.
func TestConcSingleCycle(t *testing.T) {
	pq, err := New(Skeap, Options{Nodes: 3, Priorities: 2, Seed: 31, Engine: EngineConc})
	if err != nil {
		t.Fatal(err)
	}
	pq.At(0).Insert(1, "x")
	pq.At(1).DeleteMin()
	got, err := pq.Drain()
	if err != nil || len(got) != 1 || got[0].Payload != "x" {
		t.Fatalf("first drain: %+v, %v", got, err)
	}
	// Draining again without new work is a no-op, not an error.
	if again, err := pq.Drain(); err != nil || len(again) != 0 {
		t.Fatalf("idempotent drain: %+v, %v", again, err)
	}
	// A second batch cannot run: the goroutines are gone.
	pq.At(2).DeleteMin()
	if _, err := pq.Drain(); err == nil || !strings.Contains(err.Error(), "single batch") {
		t.Fatalf("second conc batch: got %v, want single-batch error", err)
	}
}

// TestParallelFacadeMatchesSerial checks the facade-level guarantee: the
// parallel engine produces identical deliveries and metrics to the serial
// one for the same seed and operations.
func TestParallelFacadeMatchesSerial(t *testing.T) {
	build := func(kind EngineKind, workers int) ([]Delivery, interface{}) {
		pq, err := New(Seap, Options{Nodes: 8, Seed: 41, Engine: kind, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			pq.At(i % 8).Insert(uint64(i*13%50+1), "p")
		}
		for i := 0; i < 20; i++ {
			pq.At((i * 3) % 8).DeleteMin()
		}
		got, err := pq.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return got, pq.Metrics()
	}
	serialD, serialM := build(EngineSync, 0)
	parD, parM := build(EngineSyncParallel, 3)
	if !reflect.DeepEqual(serialD, parD) {
		t.Fatalf("deliveries diverge:\nserial %+v\npar    %+v", serialD, parD)
	}
	if !reflect.DeepEqual(serialM, parM) {
		t.Fatalf("metrics diverge:\nserial %+v\npar    %+v", serialM, parM)
	}
}

// TestInsertID checks the non-chaining insert returns usable ids.
func TestInsertID(t *testing.T) {
	pq, err := New(Seap, Options{Nodes: 2, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	id1 := pq.At(0).InsertID(7, "first")
	id2 := pq.At(1).InsertID(3, "second")
	if id1 == id2 || id1 == 0 || id2 == 0 {
		t.Fatalf("ids not unique: %d, %d", id1, id2)
	}
	pq.At(0).DeleteMin()
	got, err := pq.Drain()
	if err != nil || len(got) != 1 || got[0].ID != id2 {
		t.Fatalf("delete must return the id of the higher-priority insert: %+v, %v", got, err)
	}
}

func TestAtHostRangeChecked(t *testing.T) {
	pq, _ := New(Seap, Options{Nodes: 2, Seed: 61})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pq.At(2)
}
