package core

import (
	"sort"
	"testing"

	"dpq/internal/hashutil"
	"dpq/internal/prio"
)

func TestSkeapFacadeRoundTrip(t *testing.T) {
	pq, err := New(Skeap, Options{Nodes: 8, Priorities: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pq.At(0).Insert(2, "mid")
	pq.At(1).Insert(1, "hi")
	pq.At(2).Insert(3, "low")
	if _, err := pq.Drain(); err != nil {
		t.Fatal(err)
	}
	pq.At(3).DeleteMin()
	pq.At(4).DeleteMin()
	pq.At(5).DeleteMin()
	if _, err := pq.Drain(); err != nil {
		t.Fatal(err)
	}
	res := pq.Results()
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	want := []string{"hi", "mid", "low"}
	for i, d := range res {
		if !d.Found || d.Payload != want[i] {
			t.Fatalf("results %+v, want payload order %v", res, want)
		}
	}
	if err := pq.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	if pq.Metrics().Messages == 0 {
		t.Fatal("metrics not collected")
	}
}

func TestSeapFacadeRoundTrip(t *testing.T) {
	pq, err := New(Seap, Options{Nodes: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pq.At(0).Insert(50000, "low")
	pq.At(1).Insert(3, "hi")
	if _, err := pq.Drain(); err != nil {
		t.Fatal(err)
	}
	pq.At(2).DeleteMin()
	if _, err := pq.Drain(); err != nil {
		t.Fatal(err)
	}
	res := pq.Results()
	if len(res) != 1 || !res[0].Found || res[0].Payload != "hi" || res[0].Priority != 3 {
		t.Fatalf("results %+v", res)
	}
	if err := pq.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
}

func TestEmptyHeapDelivery(t *testing.T) {
	pq, err := New(Seap, Options{Nodes: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pq.At(0).DeleteMin()
	if _, err := pq.Drain(); err != nil {
		t.Fatal(err)
	}
	res := pq.Results()
	if len(res) != 1 || res[0].Found {
		t.Fatalf("⊥ expected, got %+v", res)
	}
}

func TestSkeapPriorityBoundsChecked(t *testing.T) {
	if _, err := New(Skeap, Options{Nodes: 2, Priorities: 1000}); err == nil {
		t.Fatal("Skeap must reject non-constant priority universes")
	}
	if _, err := New(Skeap, Options{Nodes: 0}); err == nil {
		t.Fatal("zero nodes must be rejected")
	}
}

func TestHostRangeChecked(t *testing.T) {
	pq, _ := New(Seap, Options{Nodes: 2, Seed: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pq.At(5).Insert(1, "")
}

func TestRandomMixedVerifies(t *testing.T) {
	for _, proto := range []Protocol{Skeap, Seap} {
		pq, err := New(proto, Options{Nodes: 6, Priorities: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		rnd := hashutil.NewRand(6)
		for i := 0; i < 50; i++ {
			if rnd.Bool(0.6) {
				pq.At(rnd.Intn(6)).Insert(rnd.Uint64n(4)+1, "")
			} else {
				pq.At(rnd.Intn(6)).DeleteMin()
			}
		}
		if _, err := pq.Drain(); err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if err := pq.Verify(); err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
	}
}

func TestSelectFacade(t *testing.T) {
	rnd := hashutil.NewRand(7)
	elems := make([]prio.Element, 150)
	for i := range elems {
		elems[i] = prio.Element{ID: prio.ElemID(i + 1), Prio: prio.Priority(rnd.Uint64n(1000) + 1)}
	}
	res, err := Select(8, elems, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	cp := append([]prio.Element(nil), elems...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	if res.Elem != cp[59] {
		t.Fatalf("got %v want %v", res.Elem, cp[59])
	}
}

func TestSelectValidation(t *testing.T) {
	if _, err := Select(0, nil, 1, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := Select(2, []prio.Element{{ID: 1, Prio: 1}}, 2, 1); err == nil {
		t.Fatal("rank beyond m must error")
	}
}

func TestResultsSerializationOrder(t *testing.T) {
	pq, _ := New(Skeap, Options{Nodes: 4, Priorities: 2, Seed: 9})
	for i := 0; i < 6; i++ {
		pq.At(i%4).Insert(uint64(i%2)+1, "")
	}
	pq.Drain()
	for i := 0; i < 6; i++ {
		pq.At(i % 4).DeleteMin()
	}
	pq.Drain()
	res := pq.Results()
	// Priority-1 elements must all precede priority-2 elements.
	seenTwo := false
	for _, d := range res {
		if d.Priority == 2 {
			seenTwo = true
		}
		if d.Priority == 1 && seenTwo {
			t.Fatalf("priority order broken: %+v", res)
		}
	}
}

func TestMaxHeapFacade(t *testing.T) {
	pq, err := New(Skeap, Options{Nodes: 4, Priorities: 3, Seed: 60, MaxHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	pq.At(0).Insert(1, "low")
	pq.At(1).Insert(3, "high")
	pq.Drain()
	pq.At(2).DeleteMin()
	pq.Drain()
	res := pq.Results()
	if len(res) != 1 || res[0].Payload != "high" {
		t.Fatalf("max-heap facade returned %+v", res)
	}
	if err := pq.Verify(); err != nil {
		t.Fatalf("max-heap verify: %v", err)
	}
}

func TestMaxHeapRejectedForSeap(t *testing.T) {
	if _, err := New(Seap, Options{Nodes: 2, MaxHeap: true}); err == nil {
		t.Fatal("Seap MaxHeap must be rejected")
	}
}

func TestSeqConsistentFacade(t *testing.T) {
	pq, err := New(Seap, Options{Nodes: 4, Priorities: 500, Seed: 70, SeqConsistent: true})
	if err != nil {
		t.Fatal(err)
	}
	// Local order at host 0: Delete (⊥), Insert, Delete (own element).
	pq.At(0).DeleteMin()
	pq.At(0).Insert(9, "mine")
	pq.At(0).DeleteMin()
	if _, err := pq.Drain(); err != nil {
		t.Fatal(err)
	}
	res := pq.Results()
	if len(res) != 2 || res[0].Found || !res[1].Found {
		t.Fatalf("results %+v", res)
	}
	if err := pq.Verify(); err != nil {
		t.Fatalf("SC variant must verify sequential consistency: %v", err)
	}
}

func TestSeqConsistentRejectedForSkeap(t *testing.T) {
	if _, err := New(Skeap, Options{Nodes: 2, SeqConsistent: true}); err == nil {
		t.Fatal("Skeap SeqConsistent option must be rejected")
	}
}
