// Package core is the public face of the reproduction: it wraps the Skeap
// and Seap protocols (the paper's primary contributions), the KSelect
// primitive and the Skueue-derived queue/stack behind a small API that
// hides engines, overlays and traces from casual users while keeping them
// reachable for experiments.
//
// A PQ is a simulated distributed priority queue: operations are issued at
// named processes ("hosts"), Run drives the network until every issued
// operation completed, Results returns what each DeleteMin got, and Verify
// replays the execution against the paper's correctness definitions
// (sequential consistency + heap consistency for Skeap, serializability +
// heap consistency for Seap).
package core

import (
	"errors"
	"fmt"
	"sort"

	"dpq/internal/hashutil"
	"dpq/internal/kselect"
	"dpq/internal/ldb"
	"dpq/internal/mathx"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/relax"
	"dpq/internal/seap"
	"dpq/internal/semantics"
	"dpq/internal/sim"
	"dpq/internal/skeap"
)

// Protocol selects the heap implementation.
type Protocol int

// Protocols.
const (
	// Skeap supports a constant number of priorities and guarantees
	// sequential consistency (Theorem 3.2).
	Skeap Protocol = iota
	// Seap supports arbitrary (poly(n)-sized) priority universes and
	// guarantees serializability with O(log n)-bit messages (Theorem 5.1).
	Seap
)

func (p Protocol) String() string {
	if p == Skeap {
		return "Skeap"
	}
	return "Seap"
}

// Options configures a PQ.
type Options struct {
	// Nodes is the number of participating processes (n ≥ 1).
	Nodes int
	// Priorities is |𝒫|. For Skeap it must be a small constant; for Seap
	// any poly(n) value works. Defaults: 4 (Skeap), n² (Seap).
	Priorities uint64
	// Seed makes the simulation reproducible.
	Seed uint64
	// MaxHeap inverts the delete preference: DeleteMin becomes DeleteMax
	// (Skeap only; §1.2's inversion).
	MaxHeap bool
	// SeqConsistent selects the §6 Seap variant: sequential consistency
	// at the cost of throughput (Seap only).
	SeqConsistent bool
	// Engine selects the execution engine (default EngineSync). See the
	// EngineKind constants for the trade-offs.
	Engine EngineKind
	// Workers sizes the EngineSyncParallel worker pool (0 = GOMAXPROCS).
	// Setting it with any other engine is an error.
	Workers int
	// MaxDelay is EngineAsync's maximum message delay in simulated time
	// units (0 = the default of 2). Setting it with any other engine is an
	// error.
	MaxDelay float64
	// Relaxation trades strict DeleteMin semantics for coordination-free
	// throughput (internal/relax). The zero value keeps the exact
	// protocols; any relaxed mode weakens Verify to relaxed validity and
	// makes the rank error measurable via RankError. Incompatible with
	// MaxHeap and SeqConsistent.
	Relaxation relax.Options
}

// Delivery is the outcome of one DeleteMin.
type Delivery struct {
	Host     int    // process that issued the DeleteMin
	Found    bool   // false: the heap was empty (⊥)
	Priority uint64 // priority of the returned element
	ID       prio.ElemID
	Payload  string
}

// PQ is a distributed priority queue running on a simulated network.
type PQ struct {
	proto    Protocol
	be       relax.Backend // the uniform injection interface (always set)
	sk       *skeap.Heap   // strict Skeap (nil when relaxed or Seap)
	se       *seap.Heap    // strict Seap (nil when relaxed or Skeap)
	rx       *relax.Heap   // relaxation engine (nil when strict)
	kind     EngineKind
	eng      *sim.SyncEngine  // EngineSync / EngineSyncParallel
	async    *sim.AsyncEngine // EngineAsync
	conc     *sim.ConcEngine  // EngineConc
	concUsed bool             // EngineConc has run its single batch
	nodes    int
	maxHeap  bool
	seqCons  bool
	nextID   uint64
	drained  int // deliveries already returned by Drain
}

// New creates a distributed priority queue.
func New(proto Protocol, opts Options) (*PQ, error) {
	if opts.Nodes < 1 {
		return nil, errors.New("core: at least one node required")
	}
	if opts.SeqConsistent && proto != Seap {
		return nil, errors.New("core: SeqConsistent mode is Seap-only")
	}
	if err := validateEngine(opts); err != nil {
		return nil, err
	}
	if err := opts.Relaxation.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.Relaxation.Enabled() {
		if opts.MaxHeap {
			return nil, errors.New("core: Relaxation is incompatible with MaxHeap")
		}
		if opts.SeqConsistent {
			return nil, errors.New("core: Relaxation is incompatible with SeqConsistent (a relaxed heap is not even serializable)")
		}
	}
	pq := &PQ{proto: proto, nodes: opts.Nodes}
	switch proto {
	case Skeap:
		p := opts.Priorities
		if p == 0 {
			p = 4
		}
		if p > 64 {
			return nil, fmt.Errorf("core: Skeap needs a constant priority universe (got %d; use Seap)", p)
		}
		if opts.Relaxation.Enabled() {
			pq.rx = relax.New(relax.Config{N: opts.Nodes, Seed: opts.Seed,
				Mode: opts.Relaxation.Mode, K: opts.Relaxation.K, Batch: opts.Relaxation.Batch,
				PrioBound: p})
			pq.be = pq.rx
			break
		}
		pq.sk = skeap.New(skeap.Config{N: opts.Nodes, P: int(p), Seed: opts.Seed, MaxHeap: opts.MaxHeap})
		pq.be = relax.WrapSkeap(pq.sk)
		pq.maxHeap = opts.MaxHeap
	case Seap:
		if opts.MaxHeap {
			return nil, errors.New("core: MaxHeap mode is Skeap-only")
		}
		bound := opts.Priorities
		if bound == 0 {
			bound = 1 << 30 // "arbitrary" priorities: a generous poly(n) default
		}
		if opts.Relaxation.Enabled() {
			pq.rx = relax.New(relax.Config{N: opts.Nodes, Seed: opts.Seed,
				Mode: opts.Relaxation.Mode, K: opts.Relaxation.K, Batch: opts.Relaxation.Batch,
				PrioBound: bound})
			pq.be = pq.rx
			break
		}
		pq.se = seap.New(seap.Config{N: opts.Nodes, PrioBound: bound, Seed: opts.Seed, SeqConsistent: opts.SeqConsistent})
		pq.be = relax.WrapSeap(pq.se)
		pq.seqCons = opts.SeqConsistent
	default:
		return nil, fmt.Errorf("core: unknown protocol %d", proto)
	}
	pq.buildEngine(opts)
	return pq, nil
}

// Protocol returns the protocol the PQ runs.
func (pq *PQ) Protocol() Protocol { return pq.proto }

// Nodes returns the number of processes.
func (pq *PQ) Nodes() int { return pq.nodes }

// insert issues Insert(e) at host and returns the element's unique id.
func (pq *PQ) insert(host int, priority uint64, payload string) prio.ElemID {
	pq.checkHost(host)
	pq.nextID++
	id := prio.ElemID(pq.nextID)
	pq.be.InjectInsert(host, id, priority, payload)
	return id
}

// deleteMin issues DeleteMin() at host.
func (pq *PQ) deleteMin(host int) {
	pq.checkHost(host)
	pq.be.InjectDelete(host)
}

func (pq *PQ) checkHost(host int) {
	if host < 0 || host >= pq.nodes {
		panic(fmt.Sprintf("core: host %d out of range [0,%d)", host, pq.nodes))
	}
}

func (pq *PQ) done() bool { return pq.be.Done() }

// Results returns the outcome of every completed DeleteMin since the PQ
// was created, in serialization order. Drain is usually more convenient:
// it runs the network and returns only the new deliveries.
func (pq *PQ) Results() []Delivery {
	ops := pq.trace().Ops()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Value < ops[j].Value })
	var out []Delivery
	for _, op := range ops {
		if op.Kind != semantics.DeleteMin || !op.Done {
			continue
		}
		d := Delivery{Host: op.Node, Found: !op.Result.Nil()}
		if d.Found {
			d.ID = op.Result.ID
			d.Payload = op.Result.Payload
			d.Priority = uint64(op.Result.Prio)
			if pq.sk != nil {
				d.Priority++ // Skeap stores 0-based priorities internally
			}
		}
		out = append(out, d)
	}
	return out
}

func (pq *PQ) trace() *semantics.Trace { return pq.be.Trace() }

// Verify replays the recorded execution against the paper's correctness
// definitions and returns an error describing the first violations, if
// any. Skeap is checked for sequential consistency + heap consistency
// (Definition 1.1 + 1.2), Seap for serializability + heap consistency. A
// relaxed PQ is checked for relaxed validity only — ordering strictness is
// quantified by RankError, not judged here.
func (pq *PQ) Verify() error {
	var rep *semantics.Report
	switch {
	case pq.rx != nil:
		rep = semantics.CheckRelaxedValidity(pq.trace())
	case pq.sk != nil && pq.maxHeap:
		rep = semantics.CheckAllMax(pq.trace(), semantics.FIFO)
	case pq.sk != nil:
		rep = semantics.CheckAll(pq.trace(), semantics.FIFO)
	case pq.seqCons:
		rep = semantics.CheckAll(pq.trace(), semantics.ByID)
	default:
		rep = semantics.CheckSerializable(pq.trace(), semantics.ByID)
	}
	if !rep.Ok() {
		return errors.New(rep.Error())
	}
	return nil
}

// Metrics returns the accumulated network cost of the run. EngineConc
// reports message counts only (no rounds or congestion).
func (pq *PQ) Metrics() sim.Metrics {
	switch pq.kind {
	case EngineAsync:
		return *pq.async.Metrics()
	case EngineConc:
		return *pq.conc.Metrics()
	default:
		return *pq.eng.Metrics()
	}
}

// Trace exposes the raw execution trace for custom analysis.
func (pq *PQ) Trace() *semantics.Trace { return pq.trace() }

// SkeapHeap / SeapHeap expose the underlying protocol instances for
// experiments (nil for the other protocol).
func (pq *PQ) SkeapHeap() *skeap.Heap { return pq.sk }

// SeapHeap exposes the underlying Seap instance (nil when running Skeap).
func (pq *PQ) SeapHeap() *seap.Heap { return pq.se }

// RelaxHeap exposes the relaxation engine (nil when running strict).
func (pq *PQ) RelaxHeap() *relax.Heap { return pq.rx }

// Relaxed reports whether the PQ runs a relaxed DeleteMin discipline.
func (pq *PQ) Relaxed() bool { return pq.rx != nil }

// RankError replays the execution trace against the sequential oracle and
// returns the rank-error histogram of its DeleteMins: how far each
// delivered element ranked from the true minimum of the live set. Strict
// PQs report all zeros — the observer doubles as a strictness proof.
func (pq *PQ) RankError() obs.RankStats { return obs.TraceRankError(pq.trace()) }

// Engine exposes the synchronous engine driving the PQ (nil unless the
// engine kind is EngineSync or EngineSyncParallel).
func (pq *PQ) Engine() *sim.SyncEngine { return pq.eng }

// Select runs the standalone KSelect protocol: it distributes elems
// uniformly over a fresh n-process overlay and returns the element of rank
// k (1-based) in the total order (priority, then id), plus the protocol
// diagnostics.
func Select(n int, elems []prio.Element, k int64, seed uint64) (kselect.Result, error) {
	if n < 1 {
		return kselect.Result{}, errors.New("core: at least one node required")
	}
	if k < 1 || k > int64(len(elems)) {
		return kselect.Result{}, fmt.Errorf("core: rank %d out of range [1,%d]", k, len(elems))
	}
	ov := ldb.New(n, hashutil.New(seed))
	sel := kselect.New(ov, hashutil.New(seed+1))
	rnd := hashutil.NewRand(seed + 2)
	for _, e := range elems {
		sel.Load(sim.NodeID(rnd.Intn(ov.NumVirtual())), e)
	}
	eng := sel.NewSyncEngine(seed + 3)
	sel.Start(eng.Context(sel.Anchor()), k)
	if !eng.RunUntil(sel.Done, 20000*(mathx.Log2Ceil(n)+3)) {
		return kselect.Result{}, errors.New("core: selection did not terminate")
	}
	return sel.Result(), nil
}
