// Package hashutil provides the "publicly known pseudorandom hash
// functions" the paper relies on: node labels in [0,1) (Appendix A), DHT
// keys h(p,pos) (§3.2.4), uniform element keys (§5.1) and the symmetric
// pair hash h(i,j)=h(j,i) used by distributed sorting (§4.3).
//
// All hashes are built on SplitMix64, a fast, well-distributed 64-bit
// mixer, seeded explicitly so that every experiment is reproducible.
package hashutil

// SplitMix64 advances the SplitMix64 state and returns the next 64-bit
// output. It is used both as a mixer (state = input) and as a PRNG step.
func SplitMix64(state uint64) uint64 {
	z := state + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix2 hashes two 64-bit values into one.
func Mix2(a, b uint64) uint64 {
	return SplitMix64(SplitMix64(a) ^ (b * 0xd6e8feb86659fd93))
}

// Mix3 hashes three 64-bit values into one.
func Mix3(a, b, c uint64) uint64 {
	return SplitMix64(Mix2(a, b) ^ (c * 0xa0761d6478bd642f))
}

// Hasher is a seeded family of pseudorandom hash functions. Distinct seeds
// give (practically) independent functions; the protocols use one publicly
// known Hasher shared by all nodes, exactly as the paper assumes.
type Hasher struct {
	seed uint64
}

// New returns a Hasher for the given seed.
func New(seed uint64) Hasher { return Hasher{seed: SplitMix64(seed ^ 0x5851f42d4c957f2d)} }

// Uint64 hashes x to a pseudorandom 64-bit value.
func (h Hasher) Uint64(x uint64) uint64 { return Mix2(h.seed, x) }

// Unit hashes x to a pseudorandom point in [0,1). It is used for node
// labels on the LDB cycle and for DHT key points.
func (h Hasher) Unit(x uint64) float64 {
	return float64(h.Uint64(x)>>11) / float64(1<<53)
}

// Pair hashes the ordered pair (a,b).
func (h Hasher) Pair(a, b uint64) uint64 { return Mix3(h.seed, a, b) }

// PairUnit hashes the ordered pair (a,b) to a point in [0,1).
func (h Hasher) PairUnit(a, b uint64) float64 {
	return float64(h.Pair(a, b)>>11) / float64(1<<53)
}

// SymPairUnit is the symmetric pair hash h(i,j)=h(j,i) ∈ [0,1) of §4.3:
// the meeting point in the DHT where copies c_{i,j} and c_{j,i} compare.
func (h Hasher) SymPairUnit(i, j uint64) float64 {
	if i > j {
		i, j = j, i
	}
	return h.PairUnit(i, j)
}

// Rand is a tiny deterministic PRNG (SplitMix64 sequence) used by the
// simulator and the protocols' random choices (sampling in KSelect §4.2,
// random DHT keys in Seap §5.1). It is not safe for concurrent use; every
// node owns its own Rand.
type Rand struct {
	state uint64
}

// NewRand returns a deterministic PRNG seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: SplitMix64(seed ^ 0x2545f4914f6cdd1d)} }

// Uint64 returns the next pseudorandom 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a pseudorandom value in [0,1).
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / float64(1<<53) }

// Intn returns a pseudorandom value in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("hashutil: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudorandom value in [0,n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hashutil: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Bool returns a pseudorandom boolean with probability p of being true.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudorandom permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent PRNG stream from r, e.g. one per node.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }

// ForkSeedAt returns the seed of the i-th Fork of a fresh NewRand(seed)
// root, without materializing the root or the i−1 earlier forks. A Fork
// consumes exactly one Uint64, and Uint64 advances the SplitMix64 state by
// a fixed increment, so fork i's seed is a pure function of (seed, i):
//
//	ForkSeedAt(seed, i) == NewRand(seed).Fork()…  (i+1 times, last seed)
//
// This lets an engine with millions of nodes derive any node's PRNG stream
// on demand in O(1) instead of storing a chain of forks.
func ForkSeedAt(seed uint64, i uint64) uint64 {
	root := SplitMix64(seed ^ 0x2545f4914f6cdd1d) // NewRand(seed).state
	// The i-th Uint64 output is finalize(root + (i+1)·γ) = SplitMix64(root + i·γ).
	return SplitMix64(root + i*0x9e3779b97f4a7c15)
}
