package hashutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("SplitMix64 must be deterministic")
	}
	if SplitMix64(42) == SplitMix64(43) {
		t.Fatal("distinct inputs should hash differently")
	}
}

func TestUnitRange(t *testing.T) {
	f := func(seed, x uint64) bool {
		u := New(seed).Unit(x)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitUniformity(t *testing.T) {
	// Chi-squared-style sanity check: 16 buckets over 16k samples should
	// each hold roughly 1k.
	h := New(7)
	const samples = 1 << 14
	var buckets [16]int
	for i := uint64(0); i < samples; i++ {
		buckets[int(h.Unit(i)*16)]++
	}
	for b, c := range buckets {
		if c < samples/16-samples/64 || c > samples/16+samples/64 {
			t.Fatalf("bucket %d count %d deviates too far from %d", b, c, samples/16)
		}
	}
}

func TestSymPairUnitSymmetric(t *testing.T) {
	f := func(seed, i, j uint64) bool {
		h := New(seed)
		return h.SymPairUnit(i, j) == h.SymPairUnit(j, i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairOrderMatters(t *testing.T) {
	h := New(3)
	if h.Pair(1, 2) == h.Pair(2, 1) {
		t.Fatal("Pair must be order-sensitive (SymPairUnit is the symmetric one)")
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for x := uint64(0); x < 64; x++ {
		if a.Uint64(x) == b.Uint64(x) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across seeds", same)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a, b := NewRand(9), NewRand(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(12)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandBoolProbability(t *testing.T) {
	r := NewRand(14)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("Bool(0.25) frequency %v", got)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(15)
	a := r.Fork()
	b := r.Fork()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlap: %d", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := NewRand(16)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(31); v >= 31 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
}

func TestForkSeedAt(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		root := NewRand(seed)
		for i := 0; i < 100; i++ {
			want := root.Uint64() // the seed Fork i would consume
			if got := ForkSeedAt(seed, uint64(i)); got != want {
				t.Fatalf("seed %d fork %d: ForkSeedAt %x, sequential chain %x", seed, i, got, want)
			}
		}
	}
}
