// Package-level benchmarks: one per experiment of DESIGN.md's index
// (E-F2, E1–E21). Each benchmark runs the protocol workload b.N times and
// reports the paper's quantities (rounds, congestion, message bits,
// candidate counts …) via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates every figure-equivalent series at benchmark scale;
// cmd/benchall produces the full-size tables.
package dpq

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"dpq/internal/baseline"
	"dpq/internal/concurrentpq"
	"dpq/internal/hashutil"
	"dpq/internal/kselect"
	"dpq/internal/ldb"
	"dpq/internal/mathx"
	"dpq/internal/prio"
	"dpq/internal/quantile"
	"dpq/internal/seap"
	"dpq/internal/semantics"
	"dpq/internal/sim"
	"dpq/internal/skeap"
	"dpq/internal/workload"
)

func benchMaxRounds(n int) int { return 20000 * (mathx.Log2Ceil(n) + 3) }

// BenchmarkTreeHeight (E-F2): LDB construction and tree height, Cor. A.4.
func BenchmarkTreeHeight(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			h := 0
			for i := 0; i < b.N; i++ {
				ov := ldb.New(n, hashutil.New(uint64(n+i)))
				h = ov.TreeHeight()
			}
			b.ReportMetric(float64(h), "height")
		})
	}
}

func runSkeapBatch(b *testing.B, n, opsPerNode int, seed uint64) *sim.Metrics {
	b.Helper()
	h := skeap.New(skeap.Config{N: n, P: 4, Seed: seed})
	h.SetAutoRepeat(false)
	rnd := hashutil.NewRand(seed + 1)
	id := prio.ElemID(1)
	for host := 0; host < n; host++ {
		for i := 0; i < opsPerNode; i++ {
			if rnd.Bool(0.6) {
				h.InjectInsert(host, id, rnd.Intn(4), "")
				id++
			} else {
				h.InjectDelete(host)
			}
		}
	}
	eng := h.NewSyncEngine()
	h.StartIteration(eng.Context(h.Overlay().Anchor))
	if !eng.RunUntil(h.Done, benchMaxRounds(n)) {
		b.Fatal("skeap batch incomplete")
	}
	return eng.Metrics()
}

// BenchmarkSkeapRoundsVsN (E1): Corollary 3.6 — O(log n) rounds per batch.
func BenchmarkSkeapRoundsVsN(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = runSkeapBatch(b, n, 2, uint64(n+i))
			}
			b.ReportMetric(float64(m.Rounds), "rounds")
			b.ReportMetric(float64(m.Rounds)/float64(mathx.Log2Ceil(n)), "rounds/log2n")
		})
	}
}

func steadySkeapBench(b *testing.B, n, lambda int, seed uint64) *sim.Metrics {
	b.Helper()
	h := skeap.New(skeap.Config{N: n, P: 4, Seed: seed})
	eng := h.NewSyncEngine()
	gen := workload.New(workload.Config{N: n, Rate: lambda, InsertFrac: 0.6, Dist: workload.Uniform, Bound: 4, Seed: seed + 1})
	for r := 0; r < 30; r++ {
		for _, op := range gen.Round() {
			if op.Kind == workload.OpInsert {
				h.InjectInsert(op.Host, op.ID, int(op.Prio-1), "")
			} else {
				h.InjectDelete(op.Host)
			}
		}
		eng.Step()
	}
	if !eng.RunUntil(h.Done, benchMaxRounds(n)) {
		b.Fatal("skeap steady run incomplete")
	}
	return eng.Metrics()
}

// BenchmarkSkeapCongestionVsLambda (E2): Lemma 3.7 — congestion Õ(Λ).
func BenchmarkSkeapCongestionVsLambda(b *testing.B) {
	for _, lam := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("lambda=%d", lam), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = steadySkeapBench(b, 32, lam, uint64(lam*100+i))
			}
			b.ReportMetric(float64(m.Congestion), "congestion")
			b.ReportMetric(float64(m.Congestion)/float64(lam), "congestion/lambda")
		})
	}
}

// BenchmarkSkeapMessageBits (E3): Lemma 3.8 — O(Λ log² n)-bit messages.
func BenchmarkSkeapMessageBits(b *testing.B) {
	for _, lam := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("lambda=%d", lam), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = steadySkeapBench(b, 32, lam, uint64(lam*200+i))
			}
			b.ReportMetric(float64(m.MaxMessageBit), "maxbits")
		})
	}
}

func runKSelectBench(b *testing.B, n, m int, k int64, seed uint64) (kselect.Result, *sim.Metrics, *kselect.Selector) {
	b.Helper()
	ov := ldb.New(n, hashutil.New(seed))
	sel := kselect.New(ov, hashutil.New(seed+1))
	sel.LoadUniform(m, uint64(m)*4, seed+2)
	eng := sel.NewSyncEngine(seed + 3)
	sel.Start(eng.Context(sel.Anchor()), k)
	if !eng.RunUntil(sel.Done, benchMaxRounds(n)) {
		b.Fatal("kselect incomplete")
	}
	return sel.Result(), eng.Metrics(), sel
}

// BenchmarkKSelectRoundsVsN (E4): Theorem 4.2 — O(log n) rounds.
func BenchmarkKSelectRoundsVsN(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var met *sim.Metrics
			for i := 0; i < b.N; i++ {
				_, met, _ = runKSelectBench(b, n, 16*n, int64(4*n), uint64(n+i))
			}
			b.ReportMetric(float64(met.Rounds), "rounds")
			b.ReportMetric(float64(met.Rounds)/float64(mathx.Log2Ceil(n)), "rounds/log2n")
		})
	}
}

// BenchmarkKSelectReduction (E5): Lemmas 4.4/4.7 — candidate shrinkage.
func BenchmarkKSelectReduction(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var res kselect.Result
			m := n * n
			for i := 0; i < b.N; i++ {
				res, _, _ = runKSelectBench(b, n, m, int64(m/2), uint64(n*3+i))
			}
			b.ReportMetric(float64(res.CandidatesAfterP1), "cand-p1")
			b.ReportMetric(float64(res.CandidatesAtP3), "cand-p3")
			b.ReportMetric(float64(res.Retries), "retries")
		})
	}
}

// BenchmarkKSelectTreeParticipation (E6): Lemma 4.5 — Θ(1) memberships.
func BenchmarkKSelectTreeParticipation(b *testing.B) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var mean float64
			var rounds int
			for i := 0; i < b.N; i++ {
				_, _, sel := runKSelectBench(b, n, 16*n, int64(8*n), uint64(n*5+i))
				mean, _ = sel.HolderStats()
				rounds = sel.SortingRounds()
			}
			if rounds > 0 {
				b.ReportMetric(mean/float64(rounds), "holders/node/round")
			}
		})
	}
}

// BenchmarkKSelectCongestion (E7): Theorem 4.2 — congestion Õ(1).
func BenchmarkKSelectCongestion(b *testing.B) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var met *sim.Metrics
			for i := 0; i < b.N; i++ {
				_, met, _ = runKSelectBench(b, n, 16*n, int64(4*n), uint64(n*7+i))
			}
			b.ReportMetric(float64(met.Congestion), "congestion")
			b.ReportMetric(float64(met.MaxMessageBit), "maxbits")
		})
	}
}

func runSeapCycle(b *testing.B, n, opsPerNode int, seed uint64) *sim.Metrics {
	b.Helper()
	h := seap.New(seap.Config{N: n, PrioBound: 1 << 20, Seed: seed})
	h.SetAutoRepeat(false)
	rnd := hashutil.NewRand(seed + 1)
	id := prio.ElemID(1)
	for host := 0; host < n; host++ {
		for i := 0; i < opsPerNode; i++ {
			if rnd.Bool(0.6) {
				h.InjectInsert(host, id, rnd.Uint64n(1<<20)+1, "")
				id++
			} else {
				h.InjectDelete(host)
			}
		}
	}
	eng := h.NewSyncEngine()
	h.StartCycle(eng.Context(h.Overlay().Anchor))
	if !eng.RunUntil(h.Done, benchMaxRounds(n)) {
		b.Fatal("seap cycle incomplete")
	}
	return eng.Metrics()
}

// BenchmarkSeapRoundsVsN (E8): Lemma 5.3 — O(log n) rounds per cycle.
func BenchmarkSeapRoundsVsN(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = runSeapCycle(b, n, 2, uint64(n*11+i))
			}
			b.ReportMetric(float64(m.Rounds), "rounds")
			b.ReportMetric(float64(m.Rounds)/float64(mathx.Log2Ceil(n)), "rounds/log2n")
		})
	}
}

func steadySeapBench(b *testing.B, n, lambda int, seed uint64) *sim.Metrics {
	b.Helper()
	h := seap.New(seap.Config{N: n, PrioBound: 1 << 20, Seed: seed})
	eng := h.NewSyncEngine()
	gen := workload.New(workload.Config{N: n, Rate: lambda, InsertFrac: 0.6, Dist: workload.Uniform, Bound: 1 << 20, Seed: seed + 1})
	for r := 0; r < 30; r++ {
		for _, op := range gen.Round() {
			if op.Kind == workload.OpInsert {
				h.InjectInsert(op.Host, op.ID, op.Prio, "")
			} else {
				h.InjectDelete(op.Host)
			}
		}
		eng.Step()
	}
	if !eng.RunUntil(h.Done, benchMaxRounds(n)) {
		b.Fatal("seap steady run incomplete")
	}
	return eng.Metrics()
}

// BenchmarkSeapCongestionVsLambda (E9): Lemma 5.4 — congestion Õ(Λ).
func BenchmarkSeapCongestionVsLambda(b *testing.B) {
	for _, lam := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("lambda=%d", lam), func(b *testing.B) {
			var m *sim.Metrics
			for i := 0; i < b.N; i++ {
				m = steadySeapBench(b, 16, lam, uint64(lam*300+i))
			}
			b.ReportMetric(float64(m.Congestion), "congestion")
			b.ReportMetric(float64(m.Congestion)/float64(lam), "congestion/lambda")
		})
	}
}

// BenchmarkSeapVsSkeapMessageBits (E10): Lemma 5.5 vs 3.8 — the headline
// message-size separation.
func BenchmarkSeapVsSkeapMessageBits(b *testing.B) {
	for _, lam := range []int{1, 16} {
		b.Run(fmt.Sprintf("lambda=%d", lam), func(b *testing.B) {
			var sk, se *sim.Metrics
			for i := 0; i < b.N; i++ {
				sk = steadySkeapBench(b, 16, lam, uint64(lam*400+i))
				se = steadySeapBench(b, 16, lam, uint64(lam*500+i))
			}
			b.ReportMetric(float64(sk.MaxMessageBit), "skeap-maxbits")
			b.ReportMetric(float64(se.MaxMessageBit), "seap-maxbits")
			b.ReportMetric(float64(sk.MaxMessageBit)/float64(se.MaxMessageBit), "ratio")
		})
	}
}

// BenchmarkDHTHops (E11): Lemma 2.2(iii) — O(log n) rounds per operation.
func BenchmarkDHTHops(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				h := skeap.New(skeap.Config{N: n, P: 1, Seed: uint64(n*13 + i)})
				h.SetAutoRepeat(false)
				h.InjectInsert(n/2, 1, 0, "")
				eng := h.NewSyncEngine()
				h.StartIteration(eng.Context(h.Overlay().Anchor))
				eng.RunQuiescent(h.Done, benchMaxRounds(n))
				rounds = eng.Metrics().Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(rounds)/float64(mathx.Log2Ceil(n)), "rounds/log2n")
		})
	}
}

// BenchmarkFairness (E12): Lemma 2.2(iv) — uniform element distribution.
func BenchmarkFairness(b *testing.B) {
	n := 32
	m := 64 * n
	var maxOverMean float64
	for i := 0; i < b.N; i++ {
		h := skeap.New(skeap.Config{N: n, P: 4, Seed: uint64(51 + i)})
		rnd := hashutil.NewRand(uint64(52 + i))
		for j := 0; j < m; j++ {
			h.InjectInsert(rnd.Intn(n), prio.ElemID(j+1), rnd.Intn(4), "")
		}
		eng := h.NewSyncEngine()
		eng.RunUntil(func() bool {
			t := 0
			for _, s := range h.StoreSizes() {
				t += s
			}
			return t == m
		}, benchMaxRounds(n))
		max := 0
		for _, s := range h.StoreSizes() {
			if s > max {
				max = s
			}
		}
		maxOverMean = float64(max) / (float64(m) / float64(n))
	}
	b.ReportMetric(maxOverMean, "max/mean-load")
}

// BenchmarkJoinLeave (E13): §1.4(4) — O(log n) restoration.
func BenchmarkJoinLeave(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				ov := ldb.New(n, hashutil.New(uint64(n*17+i)))
				joins := make([]uint64, n/4+1)
				for j := range joins {
					joins[j] = uint64(90000 + n + j)
				}
				res := ldb.RunBatch(ov, joins, []int{1, 5 % n}, uint64(n*19+i))
				if !ov.IsTree() {
					b.Fatal("restoration broke the tree")
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkSemanticsValidation (E14): Lemmas 3.5/5.2 under adversarial
// asynchrony.
func BenchmarkSemanticsValidation(b *testing.B) {
	pass, total := 0, 0
	for i := 0; i < b.N; i++ {
		for s := 0; s < 3; s++ {
			h := skeap.New(skeap.Config{N: 5, P: 3, Seed: uint64(1000 + i*10 + s)})
			rnd := hashutil.NewRand(uint64(2000 + i*10 + s))
			id := prio.ElemID(1)
			for j := 0; j < 30; j++ {
				if rnd.Bool(0.6) {
					h.InjectInsert(rnd.Intn(5), id, rnd.Intn(3), "")
					id++
				} else {
					h.InjectDelete(rnd.Intn(5))
				}
			}
			eng := h.NewAsyncEngine(3.0)
			total++
			if eng.RunUntil(h.Done, 3_000_000) && semantics.CheckAll(h.Trace(), semantics.FIFO).Ok() {
				pass++
			}
		}
	}
	if pass != total {
		b.Fatalf("semantics violations: %d/%d passed", pass, total)
	}
	b.ReportMetric(float64(pass)/float64(total), "pass-rate")
}

// BenchmarkThroughputVsBaselines (E15): batching vs the Θ(nΛ) coordinator.
func BenchmarkThroughputVsBaselines(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var skC, ceC int
			for i := 0; i < b.N; i++ {
				sk := steadySkeapBench(b, n, 8, uint64(n*23+i))
				skC = sk.Congestion
				c := baseline.NewCentral(n)
				gen := workload.New(workload.Config{N: n, Rate: 8, InsertFrac: 0.6, Dist: workload.Uniform, Bound: 1 << 16, Seed: uint64(n*29 + i)})
				eng := c.NewSyncEngine(uint64(n*31 + i))
				for r := 0; r < 30; r++ {
					for _, op := range gen.Round() {
						if op.Kind == workload.OpInsert {
							c.InjectInsert(op.Host, op.ID, op.Prio, "")
						} else {
							c.InjectDelete(op.Host)
						}
					}
					eng.Step()
				}
				eng.RunUntil(c.Done, 100000)
				ceC = eng.Metrics().Congestion
			}
			b.ReportMetric(float64(skC), "skeap-congestion")
			b.ReportMetric(float64(ceC), "central-congestion")
			b.ReportMetric(float64(ceC)/float64(skC), "ratio")
		})
	}
}

// BenchmarkKSelectVsBaselines (E16): selection cost comparison.
func BenchmarkKSelectVsBaselines(b *testing.B) {
	n := 64
	m := 16 * n
	k := int64(m / 2)
	b.Run("KSelect", func(b *testing.B) {
		var met *sim.Metrics
		for i := 0; i < b.N; i++ {
			_, met, _ = runKSelectBench(b, n, m, k, uint64(37+i))
		}
		b.ReportMetric(float64(met.Rounds), "rounds")
		b.ReportMetric(float64(met.MaxMessageBit), "maxbits")
	})
	for _, mode := range []struct {
		name string
		mode baseline.Mode
	}{{"GatherAll", baseline.GatherAll}, {"BinarySearch", baseline.BinarySearch}} {
		b.Run(mode.name, func(b *testing.B) {
			var met *sim.Metrics
			for i := 0; i < b.N; i++ {
				ov := ldb.New(n, hashutil.New(uint64(41+i)))
				s := baseline.NewSelector(ov, mode.mode)
				rnd := hashutil.NewRand(uint64(43 + i))
				for j := 0; j < m; j++ {
					s.Load(sim.NodeID(rnd.Intn(ov.NumVirtual())),
						prio.Element{ID: prio.ElemID(j + 1), Prio: prio.Priority(rnd.Uint64n(uint64(m)*4) + 1)})
				}
				eng := s.NewSyncEngine(uint64(47 + i))
				s.Start(eng.Context(s.Anchor()), k)
				if !eng.RunUntil(s.Done, benchMaxRounds(n)) {
					b.Fatal("baseline selection incomplete")
				}
				met = eng.Metrics()
			}
			b.ReportMetric(float64(met.Rounds), "rounds")
			b.ReportMetric(float64(met.MaxMessageBit), "maxbits")
		})
	}
}

// BenchmarkBatchingAblation (E17): MaxBatch=1 vs unlimited batching.
func BenchmarkBatchingAblation(b *testing.B) {
	n := 16
	drain := func(maxBatch int, seed uint64) int {
		h := skeap.New(skeap.Config{N: n, P: 4, Seed: seed, MaxBatch: maxBatch})
		gen := workload.New(workload.Config{N: n, Rate: 8, InsertFrac: 0.7, Dist: workload.Uniform, Bound: 4, Seed: seed + 1})
		for r := 0; r < 15; r++ {
			for _, op := range gen.Round() {
				if op.Kind == workload.OpInsert {
					h.InjectInsert(op.Host, op.ID, int(op.Prio-1), "")
				} else {
					h.InjectDelete(op.Host)
				}
			}
		}
		eng := h.NewSyncEngine()
		if !eng.RunUntil(h.Done, 40*benchMaxRounds(n)) {
			b.Fatal("drain incomplete")
		}
		return eng.Metrics().Rounds
	}
	var batched, unbatched int
	for i := 0; i < b.N; i++ {
		batched = drain(0, uint64(61+i))
		unbatched = drain(1, uint64(67+i))
	}
	b.ReportMetric(float64(batched), "rounds-batched")
	b.ReportMetric(float64(unbatched), "rounds-maxbatch1")
	b.ReportMetric(float64(unbatched)/float64(batched), "slowdown")
}

// BenchmarkEndToEndSort exercises the full public API the way the distsort
// example does, as a throughput reference.
func BenchmarkEndToEndSort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pq, err := New(Seap, Options{Nodes: 8, Seed: uint64(71 + i)})
		if err != nil {
			b.Fatal(err)
		}
		rnd := hashutil.NewRand(uint64(73 + i))
		var vals []uint64
		for j := 0; j < 64; j++ {
			v := rnd.Uint64n(1<<20) + 1
			vals = append(vals, v)
			pq.At(j % 8).Insert(v, "")
		}
		if _, err := pq.Drain(); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 64; j++ {
			pq.At(j % 8).DeleteMin()
		}
		if _, err := pq.Drain(); err != nil {
			b.Fatal(err)
		}
		sort.Slice(vals, func(x, y int) bool { return vals[x] < vals[y] })
		res := pq.Results()
		for j, d := range res {
			if d.Priority != vals[j] {
				b.Fatalf("sort mismatch at %d", j)
			}
		}
	}
}

// BenchmarkSharedMemoryContention (E19): the [SL00]-style comparator's
// head contention per delete, by worker count.
func BenchmarkSharedMemoryContention(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var perDelete float64
			for i := 0; i < b.N; i++ {
				const perWorker = 300
				q := concurrentpq.New(uint64(workers*1000 + i))
				for j := 0; j < workers*perWorker; j++ {
					q.Insert(prio.Element{ID: prio.ElemID(j + 1), Prio: prio.Priority(j)})
				}
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := 0; j < perWorker; j++ {
							q.DeleteMinAs(int64(w + 1))
						}
					}(w)
				}
				wg.Wait()
				perDelete = float64(q.ForeignSkips()+q.Retries()) / float64(workers*perWorker)
			}
			b.ReportMetric(perDelete, "contended-hops/delete")
		})
	}
}

// BenchmarkApproxQuantile (E21): the one-phase sketch against KSelect.
func BenchmarkApproxQuantile(b *testing.B) {
	const n, m = 32, 2048
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("sketch-k=%d", k), func(b *testing.B) {
			var met *sim.Metrics
			for i := 0; i < b.N; i++ {
				ov := ldb.New(n, hashutil.New(uint64(400+i)))
				est := quantile.New(ov, hashutil.New(uint64(401+i)), k)
				rnd := hashutil.NewRand(uint64(402 + i))
				for j := 0; j < m; j++ {
					est.Load(sim.NodeID(rnd.Intn(ov.NumVirtual())),
						prio.Element{ID: prio.ElemID(j + 1), Prio: prio.Priority(rnd.Uint64n(1 << 20))})
				}
				eng := est.NewSyncEngine(uint64(403 + i))
				est.Start(eng.Context(est.Anchor()), 0.5)
				if !eng.RunUntil(est.Done, benchMaxRounds(n)) {
					b.Fatal("sketch stuck")
				}
				met = eng.Metrics()
			}
			b.ReportMetric(float64(met.Rounds), "rounds")
			b.ReportMetric(float64(met.MaxMessageBit), "maxbits")
		})
	}
	b.Run("kselect-exact", func(b *testing.B) {
		var met *sim.Metrics
		for i := 0; i < b.N; i++ {
			_, met, _ = runKSelectBench(b, n, m, m/2, uint64(410+i))
		}
		b.ReportMetric(float64(met.Rounds), "rounds")
		b.ReportMetric(float64(met.MaxMessageBit), "maxbits")
	})
}
