// Command phasetrace renders the message anatomy of one protocol batch:
// for every round it counts delivered messages by type, making the
// paper's phases visible — Skeap's aggregate→assign→decompose→DHT pipeline
// (§3.2) and Seap's insert/select/extract/fetch cycle (§5).
//
// Usage:
//
//	phasetrace [-proto skeap|seap] [-n 16] [-ops 3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpq/internal/hashutil"
	"dpq/internal/mathx"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/seap"
	"dpq/internal/sim"
	"dpq/internal/skeap"
	"dpq/internal/viz"
)

func main() {
	proto := flag.String("proto", "skeap", "protocol to trace: skeap or seap")
	n := flag.Int("n", 16, "number of processes")
	ops := flag.Int("ops", 3, "operations buffered per process")
	seed := flag.Uint64("seed", 1, "simulation seed")
	of := obs.AddFlags()
	flag.Parse()

	sess, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phasetrace:", err)
		os.Exit(1)
	}
	tl := viz.NewTimeline()
	budget := 100000 * (mathx.Log2Ceil(*n) + 3)
	var rounds int
	var metrics *sim.Metrics

	switch *proto {
	case "skeap":
		h := skeap.New(skeap.Config{N: *n, P: 4, Seed: *seed})
		h.SetAutoRepeat(false)
		inject(*n, *ops, *seed+1, func(host int, id prio.ElemID, p uint64, ins bool) {
			if ins {
				h.InjectInsert(host, id, int(p%4), "")
			} else {
				h.InjectDelete(host)
			}
		})
		eng := h.NewSyncEngine()
		eng.SetObserver(obs.Multi(tl.Observer(), sess.Observer()))
		h.SetObs(sess.Collector())
		h.StartIteration(eng.Context(h.Overlay().Anchor))
		if !eng.RunQuiescent(h.Done, budget) {
			fmt.Fprintln(os.Stderr, "phasetrace: batch did not complete")
			os.Exit(1)
		}
		rounds = eng.Metrics().Rounds
		metrics = eng.Metrics()
	case "seap":
		h := seap.New(seap.Config{N: *n, PrioBound: 1 << 20, Seed: *seed})
		h.SetAutoRepeat(false)
		inject(*n, *ops, *seed+1, func(host int, id prio.ElemID, p uint64, ins bool) {
			if ins {
				h.InjectInsert(host, id, p%(1<<20)+1, "")
			} else {
				h.InjectDelete(host)
			}
		})
		eng := h.NewSyncEngine()
		eng.SetObserver(obs.Multi(tl.Observer(), sess.Observer()))
		h.SetObs(sess.Collector())
		h.StartCycle(eng.Context(h.Overlay().Anchor))
		if !eng.RunQuiescent(h.Done, budget) {
			fmt.Fprintln(os.Stderr, "phasetrace: cycle did not complete")
			os.Exit(1)
		}
		rounds = eng.Metrics().Rounds
		metrics = eng.Metrics()
	default:
		fmt.Fprintln(os.Stderr, "phasetrace: unknown -proto (want skeap or seap)")
		os.Exit(2)
	}
	if err := sess.Close(metrics); err != nil {
		fmt.Fprintln(os.Stderr, "phasetrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%s batch anatomy: n=%d, %d ops/node, %d rounds\n\n", *proto, *n, *ops, rounds)
	tl.Render(os.Stdout)
}

// inject buffers ops per node with a deterministic mix.
func inject(n, ops int, seed uint64, do func(host int, id prio.ElemID, p uint64, ins bool)) {
	rnd := hashutil.NewRand(seed)
	id := prio.ElemID(1)
	for host := 0; host < n; host++ {
		for i := 0; i < ops; i++ {
			if rnd.Bool(0.6) {
				do(host, id, rnd.Uint64(), true)
				id++
			} else {
				do(host, 0, 0, false)
			}
		}
	}
}
