// Command dpqd hosts one shard of a distributed priority queue: it runs
// the virtual nodes of the hosts assigned to this process on the netrun
// TCP engine (peer daemons run the rest) and serves the clientproto
// protocol through the internal/serve layer — lease-based DeleteMin with
// Ack/Nack, write-ahead durability of the pending set, and admission
// control. Operations are buffered into the protocol's batches exactly
// like simulator injections; a client gets its response when the heap
// protocol completes the operation, so pipelined clients are batched per
// the paper's batch model.
//
// Every client connection is pinned to one local host. Requests of a
// connection are injected in arrival order, so a connection's responses
// carry monotonically increasing serialization values (the property
// cmd/dpqload verifies as local consistency).
//
// A 2-process loopback cluster with durability:
//
//	dpqd -proc 0 -peers 127.0.0.1:9101,127.0.0.1:9102 -client 127.0.0.1:9201 \
//	     -clients 127.0.0.1:9201,127.0.0.1:9202 -wal /tmp/d0 &
//	dpqd -proc 1 -peers 127.0.0.1:9101,127.0.0.1:9102 -client 127.0.0.1:9202 \
//	     -clients 127.0.0.1:9201,127.0.0.1:9202 -wal /tmp/d1 &
//	dpqload -servers 127.0.0.1:9201,127.0.0.1:9202 -quick
//
// With -wal set, a daemon that dies (even SIGKILL) recovers its pending
// set on restart: acknowledged inserts survive, unacked leased elements
// are redelivered. SIGTERM/SIGINT drain in-flight operations, snapshot
// the pending set, flush the observability outputs (-trace-jsonl traces
// are per-daemon and per-node round-monotone: validate with `tracecheck
// -per-node`) and exit 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dpq/internal/ldb"
	"dpq/internal/netrun"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/relax"
	"dpq/internal/seap"
	"dpq/internal/serve"
	"dpq/internal/sim"
	"dpq/internal/skeap"
)

func main() {
	proc := flag.Int("proc", 0, "this daemon's index into -peers")
	peers := flag.String("peers", "", "comma-separated netrun addresses, one per daemon (required)")
	clientAddr := flag.String("client", "", "client protocol listen address (required)")
	clients := flag.String("clients", "", "comma-separated client addresses of every daemon, in -peers order (required with -wal in a multi-daemon cluster: acks replicate to the owning daemon's log)")
	hosts := flag.Int("hosts", 4, "total hosts across the whole cluster")
	prios := flag.Int("prios", 3, "skeap: |𝒫|; seap: priority bound")
	proto := flag.String("proto", "skeap", "heap protocol: skeap or seap")
	seed := flag.Uint64("seed", 1, "cluster seed (must match on every daemon)")
	tick := flag.Duration("tick", time.Millisecond, "activation period")
	walDir := flag.String("wal", "", "durability directory: WAL + snapshots of this daemon's pending set (empty: no durability)")
	leaseTTL := flag.Duration("lease-ttl", serve.DefaultLeaseTTL, "how long a delivered element stays leased before redelivery")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "max accepted-but-incomplete heap ops before ErrOverloaded (negative: unlimited)")
	maxConnQueue := flag.Int("max-conn-queue", serve.DefaultMaxConnQueue, "max unwritten responses per connection before eviction (negative: unlimited)")
	snapshotEvery := flag.Duration("snapshot-every", 10*time.Second, "pending-set snapshot period with -wal (0: only at shutdown)")
	heartbeat := flag.Duration("heartbeat", 100*time.Millisecond, "peer heartbeat period in a multi-daemon cluster (0: no failure detection)")
	suspectAfter := flag.Duration("suspect-after", 0, "silence before a peer is suspect (0: 4×heartbeat)")
	downAfter := flag.Duration("down-after", 0, "silence before a peer is down (0: 10×heartbeat)")
	settleDelay := flag.Duration("reconcile-settle", 250*time.Millisecond, "quiescence window between a cluster reset and the reconciliation lease scan")
	relaxMode := flag.String("relax", "", "relaxed DeleteMin mode: samplek or batchlocal (empty: strict; replaces -proto, single-process only)")
	relaxK := flag.Int("relax-k", 0, "samplek: hosts sampled per DeleteMin (0: default)")
	relaxBatch := flag.Int("relax-batch", 0, "batchlocal: prefetch refill batch size (0: default)")
	of := obs.AddFlags()
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dpqd: "+format+"\n", args...)
		os.Exit(1)
	}
	addrs := strings.Split(*peers, ",")
	procs := len(addrs)
	if *peers == "" || *clientAddr == "" {
		fail("-peers and -client are required")
	}
	if *proc < 0 || *proc >= procs {
		fail("-proc %d out of range for %d peers", *proc, procs)
	}
	if *hosts < procs {
		fail("need at least one host per daemon (%d hosts, %d daemons)", *hosts, procs)
	}

	// Every daemon builds the identical full heap from the shared seed and
	// runs only its shard; the protocol state of remote nodes is never
	// touched because their handlers never run here.
	var heap serve.ProtocolHeap
	switch *proto {
	case "skeap":
		heap = serve.NewSkeapHeap(skeap.New(skeap.Config{N: *hosts, P: *prios, Seed: *seed}), *prios)
	case "seap":
		if procs > 1 {
			// Seap's per-cycle serialization finalize is anchored: the root
			// sorts the cycle's delete results by key to assign values
			// (Lemma 5.2), which needs every delete record of the cycle in
			// one place. Distributing that sort is future work; until then a
			// seap shard must be a single process.
			fail("-proto seap requires a single-process cluster (got %d peers)", procs)
		}
		heap = serve.NewSeapHeap(
			seap.New(seap.Config{N: *hosts, PrioBound: uint64(*prios), Seed: *seed, SeqConsistent: true}),
			uint64(*prios))
	default:
		fail("unknown -proto %q", *proto)
	}
	// -relax swaps the heap for the relaxation engine (internal/relax): the
	// same serving layer, but deletes are served coordination-free at a
	// measured rank error (reported as the "rankError" metrics extra at
	// shutdown). Single-process only: the engine has no reset protocol, so
	// partial-failure reconciliation cannot cover it.
	var relaxH *relax.Heap
	if *relaxMode != "" {
		if procs > 1 {
			fail("-relax requires a single-process cluster (got %d peers)", procs)
		}
		mode, err := relax.ParseMode(*relaxMode)
		if err != nil || mode == relax.Strict {
			fail("-relax %q: want samplek or batchlocal", *relaxMode)
		}
		relaxH = relax.New(relax.Config{
			N: *hosts, Seed: *seed, Mode: mode,
			K: *relaxK, Batch: *relaxBatch,
			PrioBound: uint64(*prios),
		})
		heap = serve.NewRelaxHeap(relaxH, uint64(*prios))
		*proto = "relax-" + mode.String()
	}

	// Contiguous host sharding: daemon p owns hosts [p·H/P, (p+1)·H/P).
	hostOwner := make([]int, *hosts)
	for p := 0; p < procs; p++ {
		for h := p * *hosts / procs; h < (p+1)**hosts/procs; h++ {
			hostOwner[h] = p
		}
	}
	var localHosts []int
	for h, p := range hostOwner {
		if p == *proc {
			localHosts = append(localHosts, h)
		}
	}

	sess, err := of.Start()
	if err != nil {
		fail("%v", err)
	}
	heap.SetObs(sess.Collector())

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dpqd[%d]: "+format+"\n", append([]any{*proc}, args...)...)
	}

	// In a multi-daemon cluster an element's WAL records live on the
	// daemon that accepted its insert, but the heap may deliver it to any
	// daemon's client. Acks therefore replicate to the owner (recovered
	// from the id's process bits) over the client protocol; without that,
	// a crash-restart cycle would resurrect already-consumed elements.
	// Built before the engine: the failure detector's callbacks park and
	// flush its per-owner queues.
	var fwd *serve.AckForwarder
	var clientAddrs []string
	var ownerOf func(prio.ElemID) int
	var peerAck func(int, prio.ElemID, func(error))
	if procs > 1 {
		if *clients == "" {
			if *walDir != "" {
				fail("-clients is required with -wal in a multi-daemon cluster (acks must replicate to the inserting daemon's log)")
			}
		} else {
			clientAddrs = strings.Split(*clients, ",")
			if len(clientAddrs) != procs {
				fail("-clients lists %d addresses for %d daemons", len(clientAddrs), procs)
			}
			fwd = serve.NewAckForwarder(clientAddrs)
			ownerOf = func(id prio.ElemID) int { return int(uint64(id)>>40) - 1 }
			peerAck = fwd.Forward
		}
	}

	handlers, transports := sim.WrapAllReliable(heap.Handlers(), sim.DefaultTransportConfig())
	groups, group := heap.Overlay().Group()
	nodeOwner := func(id sim.NodeID) int { return hostOwner[ldb.HostOf(id)] }
	anchorProc := nodeOwner(heap.Overlay().Anchor)
	if procs > 1 {
		// The anchor's daemon is the reset injector (a structural single
		// point of failure); operators and the partial-crash CI job pick
		// their victim from this line.
		logf("dpqd: anchor virtual node owned by proc %d", anchorProc)
	}

	// rec is assigned after the serving layer exists; the engine callbacks
	// below only fire once the engine starts, which is later still.
	var rec *serve.Reconciler
	hb := *heartbeat
	if procs == 1 {
		hb = 0
	}
	eng, err := netrun.New(netrun.Config{
		Proc:           *proc,
		Addrs:          addrs,
		Handlers:       handlers,
		Owner:          nodeOwner,
		Seed:           *seed + 1,
		Groups:         groups,
		Group:          group,
		Tick:           *tick,
		Observer:       sess.Observer(),
		HeartbeatEvery: hb,
		SuspectAfter:   *suspectAfter,
		DownAfter:      *downAfter,
		OnPeerState: func(p int, state netrun.PeerState) {
			if rec == nil {
				return
			}
			switch state {
			case netrun.PeerDown:
				rec.PeerDown(p)
			case netrun.PeerUp:
				// Recovered without a restart (network blip, slow peer):
				// nothing was lost, just release any parked acks. A real
				// restart additionally fires OnPeerRejoin below.
				if fwd != nil {
					fwd.SetPeerDown(p, false)
				}
			}
		},
		OnPeerRejoin: func(p int) {
			// Runs on the engine's handler goroutine, so the transports may
			// be touched directly: the restarted process renumbers its
			// reliable-transport frames from zero, and without forgetting
			// the old dedup state every post-restart frame from its nodes
			// would be swallowed as a duplicate.
			for i, t := range transports {
				if nodeOwner(sim.NodeID(i)) != *proc {
					continue
				}
				for v := range transports {
					if nodeOwner(sim.NodeID(v)) == p {
						t.ResetPeer(sim.NodeID(v))
					}
				}
			}
			if rec != nil {
				go rec.PeerRejoined(p)
			}
		},
		Logf: logf,
	})
	if err != nil {
		fail("%v", err)
	}

	// Element ids: (proc+1) in the high bits keeps ids unique per daemon.
	// The counter is seeded after serve.New below — with -wal a restarted
	// daemon must mint ids above everything the previous incarnation
	// logged, or a new insert would collide with a recovered element.
	var idMu sync.Mutex
	idCtr := uint64(0)
	nextID := func() prio.ElemID {
		idMu.Lock()
		defer idMu.Unlock()
		idCtr++
		return prio.ElemID(uint64(*proc+1)<<40 | idCtr)
	}

	// The serving layer recovers and re-injects this daemon's durable
	// pending set before the engine starts ticking, so recovery inserts
	// serialize before any client operation on the same host. In a
	// reconciling multi-daemon cluster recovery is deferred instead: the
	// survivors' cluster reset must land before re-injection, or the
	// recovered elements would race the abandoned positions.
	var degraded func() bool
	if procs > 1 && hb > 0 {
		degraded = eng.AnyPeerDown
	}
	deferRecovery := procs > 1 && *walDir != "" && fwd != nil
	srv, err := serve.New(serve.Config{
		Heap:          heap,
		Hosts:         localHosts,
		NextID:        nextID,
		WALDir:        *walDir,
		LeaseTTL:      *leaseTTL,
		MaxInFlight:   *maxInFlight,
		MaxConnQueue:  *maxConnQueue,
		SnapshotEvery: *snapshotEvery,
		Proc:          *proc,
		Owner:         ownerOf,
		PeerAck:       peerAck,
		Degraded:      degraded,
		DeferRecovery: deferRecovery,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dpqd[%d]: serve: "+format+"\n", append([]any{*proc}, args...)...)
		},
	})
	if err != nil {
		fail("%v", err)
	}
	// Partial-failure reconciliation needs the reset protocol (Skeap) and
	// the cross-daemon ack channel; with both present, peer crashes and
	// rejoins are handled instead of merely logged.
	if rh, ok := heap.(serve.ResettableHeap); ok && fwd != nil {
		rec = &serve.Reconciler{
			Server:      srv,
			Heap:        rh,
			Fwd:         fwd,
			AnchorLocal: anchorProc == *proc,
			Peers:       clientAddrs,
			Proc:        *proc,
			SettleDelay: *settleDelay,
			Logf:        logf,
		}
		fwd.OnParkFlush = func(owner int, id prio.ElemID, err error) { srv.SettleParked(id, err) }
	}
	// Seed the id counter past the recovered maximum before any client is
	// served (recovery re-injects elements under their old ids without
	// consuming new ones). Ids minted under a different process tag cannot
	// collide with ours and are ignored.
	if maxID := uint64(srv.MaxRecoveredID()); maxID>>40 == uint64(*proc+1) {
		idMu.Lock()
		idCtr = maxID & (1<<40 - 1)
		idMu.Unlock()
	}
	eng.Start()
	if deferRecovery && rec != nil {
		// Recovery re-injection waits for the survivors' cluster reset (or
		// the cold-start timeout on a fresh/full-cluster start); it blocks
		// on engine progress, so it must not run on this goroutine.
		go rec.RecoverAsRestarter()
	}

	ln, err := net.Listen("tcp", *clientAddr)
	if err != nil {
		fail("client listen: %v", err)
	}
	fmt.Printf("dpqd[%d]: serving clients on %s, peers on %s, %d local hosts (%s)\n",
		*proc, ln.Addr(), eng.Addr(), len(localHosts), *proto)
	go srv.Serve(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig

	// Graceful drain: no new clients or operations (late requests get
	// ErrShuttingDown), let in-flight operations complete, then snapshot,
	// flush the engine and the observability outputs. The verdict below
	// uses one atomic capture: Shutdown's returned stats plus a single
	// quiescence check after eng.Close, when no completion can still be
	// running — a verdict assembled from live counters could disagree with
	// itself.
	ln.Close()
	srv.Drain()
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Quiesced() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st, serr := srv.Shutdown()
	if fwd != nil {
		fwd.Close()
	}
	eng.Close()
	drained := srv.Quiesced() && st.InFlight == 0
	if serr != nil {
		fmt.Fprintf(os.Stderr, "dpqd[%d]: shutdown: %v\n", *proc, serr)
	}
	m := eng.Metrics()
	sess.SetExtra("serve", st)
	if procs > 1 && hb > 0 {
		sess.SetExtra("peers", eng.Health())
	}
	if relaxH != nil {
		// The rank-error histogram of everything this daemon delivered:
		// the relaxed counterpart of the strict protocols' semantics
		// battery, quantifying how far each delivery was from the true
		// minimum at its serialization point.
		sess.SetExtra("rankError", obs.TraceRankError(relaxH.Trace()))
	}
	if err := sess.Close(&m); err != nil {
		fail("%v", err)
	}
	tr := heap.Trace()
	fmt.Printf("dpqd[%d]: served %d ops (%d rejected, %d leases, %d acked, %d redelivered), %d ops local, %d pending, ticks=%d msgs=%d drained=%v\n",
		*proc, st.Served, st.Rejected, st.LeasesGranted, st.Acked, st.Redeliveries, tr.Len(), st.Pending, m.Rounds, m.Messages, drained)
	if !drained || serr != nil {
		os.Exit(1)
	}
}
