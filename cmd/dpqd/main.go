// Command dpqd hosts one shard of a distributed priority queue: it runs
// the virtual nodes of the hosts assigned to this process on the netrun
// TCP engine (peer daemons run the rest) and serves the clientproto
// Insert/DeleteMin protocol to clients. Operations are buffered into the
// protocol's batches exactly like simulator injections; a client gets its
// response when the heap protocol completes the operation, so pipelined
// clients are batched per the paper's batch model.
//
// Every client connection is pinned to one local host. Requests of a
// connection are injected in arrival order, so a connection's responses
// carry monotonically increasing serialization values (the property
// cmd/dpqload verifies as local consistency).
//
// A 2-process loopback cluster:
//
//	dpqd -proc 0 -peers 127.0.0.1:9101,127.0.0.1:9102 -client 127.0.0.1:9201 &
//	dpqd -proc 1 -peers 127.0.0.1:9101,127.0.0.1:9102 -client 127.0.0.1:9202 &
//	dpqload -servers 127.0.0.1:9201,127.0.0.1:9202 -quick
//
// SIGTERM/SIGINT drain in-flight operations, flush the observability
// outputs (-trace-jsonl traces are per-daemon and per-node round-monotone:
// validate with `tracecheck -per-node`) and exit 0.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dpq/internal/clientproto"
	"dpq/internal/ldb"
	"dpq/internal/netrun"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/seap"
	"dpq/internal/semantics"
	"dpq/internal/sim"
	"dpq/internal/skeap"
)

// pq abstracts the two heap protocols for the daemon.
type pq interface {
	Insert(host int, id prio.ElemID, p uint64, payload string) *semantics.Op
	Delete(host int) *semantics.Op
	Trace() *semantics.Trace
	Handlers() []sim.Handler
	Overlay() *ldb.Overlay
	SetObs(c *obs.Collector)
}

// skeapPQ adapts skeap: client priorities map onto the constant universe
// by index modulo |𝒫|.
type skeapPQ struct {
	h *skeap.Heap
	p int
}

func (q skeapPQ) Insert(host int, id prio.ElemID, p uint64, payload string) *semantics.Op {
	return q.h.InjectInsert(host, id, int(p%uint64(q.p)), payload)
}
func (q skeapPQ) Delete(host int) *semantics.Op  { return q.h.InjectDelete(host) }
func (q skeapPQ) Trace() *semantics.Trace        { return q.h.Trace() }
func (q skeapPQ) Handlers() []sim.Handler        { return q.h.Handlers() }
func (q skeapPQ) Overlay() *ldb.Overlay          { return q.h.Overlay() }
func (q skeapPQ) SetObs(c *obs.Collector)        { q.h.SetObs(c) }

// seapPQ adapts seap (sequentially consistent variant): client priorities
// map into [1, bound].
type seapPQ struct {
	h     *seap.Heap
	bound uint64
}

func (q seapPQ) Insert(host int, id prio.ElemID, p uint64, payload string) *semantics.Op {
	return q.h.InjectInsert(host, id, p%q.bound+1, payload)
}
func (q seapPQ) Delete(host int) *semantics.Op  { return q.h.InjectDelete(host) }
func (q seapPQ) Trace() *semantics.Trace        { return q.h.Trace() }
func (q seapPQ) Handlers() []sim.Handler        { return q.h.Handlers() }
func (q seapPQ) Overlay() *ldb.Overlay          { return q.h.Overlay() }
func (q seapPQ) SetObs(c *obs.Collector)        { q.h.SetObs(c) }

// client is one connected clientproto session with an asynchronous
// response writer: heap completions enqueue responses without ever
// blocking the protocol goroutine on a slow client socket.
type client struct {
	conn net.Conn
	bw   *bufio.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*clientproto.Response
	closed bool
}

func newClient(conn net.Conn) *client {
	c := &client{conn: conn, bw: bufio.NewWriter(conn)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *client) send(resp *clientproto.Response) {
	c.mu.Lock()
	if !c.closed {
		c.queue = append(c.queue, resp)
	}
	c.mu.Unlock()
	c.cond.Signal()
}

func (c *client) close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
	c.conn.Close()
}

// closeGraceful stops accepting new responses but lets writeLoop flush the
// queued ones (including a final StatusError) before the socket closes —
// close() would race the write and could drop the very response explaining
// the shutdown.
func (c *client) closeGraceful() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
}

// writeLoop drains the response queue onto the socket and closes it once
// the client is marked closed and the queue is flushed.
func (c *client) writeLoop() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		batch := c.queue
		c.queue = nil
		closed := c.closed
		c.mu.Unlock()
		for _, resp := range batch {
			if err := clientproto.WriteResponse(c.bw, resp); err != nil {
				c.close()
				return
			}
		}
		if len(batch) > 0 {
			if err := c.bw.Flush(); err != nil {
				c.close()
				return
			}
		}
		if closed {
			c.conn.Close()
			return
		}
	}
}

// daemon routes heap completions back to the issuing client.
type daemon struct {
	heap pq

	mu       sync.Mutex
	pending  map[*semantics.Op]pendingRef
	served   int64
	rejected int64
	draining bool
}

type pendingRef struct {
	c     *client
	reqID uint64
}

// onComplete answers the client that issued op (if any — ops injected by
// other drivers complete silently).
func (d *daemon) onComplete(op *semantics.Op) {
	d.mu.Lock()
	ref, ok := d.pending[op]
	if ok {
		delete(d.pending, op)
		d.served++
	}
	d.mu.Unlock()
	if !ok {
		return
	}
	resp := &clientproto.Response{ReqID: ref.reqID, Value: op.Value}
	switch {
	case op.Kind == semantics.Insert:
		resp.Status = clientproto.StatusInserted
		resp.ID = uint64(op.Elem.ID)
	case op.Result.Nil():
		resp.Status = clientproto.StatusBottom
	default:
		resp.Status = clientproto.StatusElem
		resp.ID = uint64(op.Result.ID)
		resp.Prio = uint64(op.Result.Prio)
	}
	ref.c.send(resp)
}

// reject answers a request with a typed error code instead of serving it.
func (d *daemon) reject(c *client, reqID uint64, code clientproto.ErrCode) {
	d.mu.Lock()
	d.rejected++
	d.mu.Unlock()
	c.send(&clientproto.Response{ReqID: reqID, Status: clientproto.StatusError, Code: code})
}

// serveClient reads one connection's requests and injects them, in order,
// on the pinned host. Well-delimited invalid requests (*ReqError) are
// answered with their typed code and the connection keeps serving; only
// I/O-level failures end the session.
func (d *daemon) serveClient(c *client, host int, nextID func() prio.ElemID) {
	defer c.closeGraceful()
	br := bufio.NewReader(c.conn)
	for {
		req, err := clientproto.ReadRequest(br)
		if err != nil {
			var re *clientproto.ReqError
			if errors.As(err, &re) {
				d.reject(c, re.ReqID, re.Code)
				continue
			}
			return
		}
		// Holding d.mu across inject+track closes the window in which the
		// protocol could complete the op before it is tracked.
		d.mu.Lock()
		if d.draining {
			d.rejected++
			d.mu.Unlock()
			c.send(&clientproto.Response{ReqID: req.ReqID, Status: clientproto.StatusError, Code: clientproto.ErrShuttingDown})
			continue
		}
		var op *semantics.Op
		if req.Op == clientproto.OpInsert {
			op = d.heap.Insert(host, nextID(), req.Prio, req.Payload)
		} else {
			op = d.heap.Delete(host)
		}
		d.pending[op] = pendingRef{c: c, reqID: req.ReqID}
		d.mu.Unlock()
	}
}

func main() {
	proc := flag.Int("proc", 0, "this daemon's index into -peers")
	peers := flag.String("peers", "", "comma-separated netrun addresses, one per daemon (required)")
	clientAddr := flag.String("client", "", "client protocol listen address (required)")
	hosts := flag.Int("hosts", 4, "total hosts across the whole cluster")
	prios := flag.Int("prios", 3, "skeap: |𝒫|; seap: priority bound")
	proto := flag.String("proto", "skeap", "heap protocol: skeap or seap")
	seed := flag.Uint64("seed", 1, "cluster seed (must match on every daemon)")
	tick := flag.Duration("tick", time.Millisecond, "activation period")
	of := obs.AddFlags()
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dpqd: "+format+"\n", args...)
		os.Exit(1)
	}
	addrs := strings.Split(*peers, ",")
	procs := len(addrs)
	if *peers == "" || *clientAddr == "" {
		fail("-peers and -client are required")
	}
	if *proc < 0 || *proc >= procs {
		fail("-proc %d out of range for %d peers", *proc, procs)
	}
	if *hosts < procs {
		fail("need at least one host per daemon (%d hosts, %d daemons)", *hosts, procs)
	}

	// Every daemon builds the identical full heap from the shared seed and
	// runs only its shard; the protocol state of remote nodes is never
	// touched because their handlers never run here.
	var heap pq
	switch *proto {
	case "skeap":
		heap = skeapPQ{h: skeap.New(skeap.Config{N: *hosts, P: *prios, Seed: *seed}), p: *prios}
	case "seap":
		if procs > 1 {
			// Seap's per-cycle serialization finalize is anchored: the root
			// sorts the cycle's delete results by key to assign values
			// (Lemma 5.2), which needs every delete record of the cycle in
			// one place. Distributing that sort is future work; until then a
			// seap shard must be a single process.
			fail("-proto seap requires a single-process cluster (got %d peers)", procs)
		}
		heap = seapPQ{
			h:     seap.New(seap.Config{N: *hosts, PrioBound: uint64(*prios), Seed: *seed, SeqConsistent: true}),
			bound: uint64(*prios),
		}
	default:
		fail("unknown -proto %q", *proto)
	}

	// Contiguous host sharding: daemon p owns hosts [p·H/P, (p+1)·H/P).
	hostOwner := make([]int, *hosts)
	for p := 0; p < procs; p++ {
		for h := p * *hosts / procs; h < (p+1)**hosts/procs; h++ {
			hostOwner[h] = p
		}
	}
	var localHosts []int
	for h, p := range hostOwner {
		if p == *proc {
			localHosts = append(localHosts, h)
		}
	}

	sess, err := of.Start()
	if err != nil {
		fail("%v", err)
	}
	heap.SetObs(sess.Collector())

	handlers, _ := sim.WrapAllReliable(heap.Handlers(), sim.DefaultTransportConfig())
	groups, group := heap.Overlay().Group()
	eng, err := netrun.New(netrun.Config{
		Proc:     *proc,
		Addrs:    addrs,
		Handlers: handlers,
		Owner:    func(id sim.NodeID) int { return hostOwner[ldb.HostOf(id)] },
		Seed:     *seed + 1,
		Groups:   groups,
		Group:    group,
		Tick:     *tick,
		Observer: sess.Observer(),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dpqd[%d]: "+format+"\n", append([]any{*proc}, args...)...)
		},
	})
	if err != nil {
		fail("%v", err)
	}
	eng.Start()

	d := &daemon{heap: heap, pending: make(map[*semantics.Op]pendingRef)}
	heap.Trace().SetOnComplete(d.onComplete)

	ln, err := net.Listen("tcp", *clientAddr)
	if err != nil {
		fail("client listen: %v", err)
	}
	fmt.Printf("dpqd[%d]: serving clients on %s, peers on %s, %d local hosts (%s)\n",
		*proc, ln.Addr(), eng.Addr(), len(localHosts), *proto)

	// Element ids: (proc+1) in the high bits keeps ids unique per daemon.
	var idMu sync.Mutex
	idCtr := uint64(0)
	nextID := func() prio.ElemID {
		idMu.Lock()
		defer idMu.Unlock()
		idCtr++
		return prio.ElemID(uint64(*proc+1)<<40 | idCtr)
	}

	var clientsMu sync.Mutex
	clients := make(map[*client]bool)
	go func() {
		connCtr := 0
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c := newClient(conn)
			host := localHosts[connCtr%len(localHosts)]
			connCtr++
			clientsMu.Lock()
			clients[c] = true
			clientsMu.Unlock()
			go c.writeLoop()
			go d.serveClient(c, host, nextID)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig

	// Graceful drain: no new clients or operations (late requests get
	// ErrShuttingDown), let in-flight operations complete, then flush the
	// engine and the observability outputs.
	ln.Close()
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	tr := heap.Trace()
	deadline := time.Now().Add(10 * time.Second)
	for tr.DoneCount() < tr.Len() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	clientsMu.Lock()
	for c := range clients {
		c.close()
	}
	clientsMu.Unlock()
	eng.Close()
	m := eng.Metrics()
	if err := sess.Close(&m); err != nil {
		fail("%v", err)
	}
	d.mu.Lock()
	served, rejected := d.served, d.rejected
	d.mu.Unlock()
	drained := tr.DoneCount() == tr.Len()
	fmt.Printf("dpqd[%d]: served %d ops (%d rejected), %d ops local, ticks=%d msgs=%d drained=%v\n",
		*proc, served, rejected, tr.Len(), m.Rounds, m.Messages, drained)
	if !drained {
		os.Exit(1)
	}
}
