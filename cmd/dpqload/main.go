// Command dpqload is the closed-loop load generator and checker for a
// dpqd cluster. It opens -conns pipelined connections per daemon, runs an
// insert phase followed by a delete phase of equal size, and then verifies
// the cluster behaved like one priority queue:
//
//   - every inserted element id is deleted exactly once and nothing else
//     appears (exactly-once end to end, through the reliable transport's
//     dedup and the daemons' completion routing);
//   - no delete returns ⊥ while the queue is non-empty, and one trailing
//     delete after the drain does return ⊥;
//   - each connection's serialization values are strictly increasing
//     (local consistency: a connection is pinned to one host, so its
//     responses follow that host's issue order).
//
// It reports per-phase throughput and response latency percentiles.
// -quick (6000 inserts + 6000 deletes + 1 drain probe) is the CI preset.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dpq/internal/clientproto"
)

// seqVal pairs a response's serialization value with its request's
// per-connection issue sequence.
type seqVal struct {
	seq uint64
	v   int64
}

// conn is one pipelined client connection with its recorded outcomes.
type conn struct {
	idx  int
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	seq  uint64
	sent map[uint64]time.Time // reqID → send time, in flight

	values    []seqVal // serialization values tagged with issue order
	insertIDs []uint64
	deleteIDs []uint64
	bottoms   int
	latencies []time.Duration
}

func (c *conn) nextReqID() uint64 {
	c.seq++
	return uint64(c.idx)<<32 | c.seq
}

// sendOne issues one request (insert below the priority bound, or delete).
func (c *conn) sendOne(insert bool, prios uint64) error {
	req := &clientproto.Request{ReqID: c.nextReqID()}
	if insert {
		req.Op = clientproto.OpInsert
		// Spread priorities deterministically; the daemon maps them into
		// its protocol's universe.
		req.Prio = c.seq * 2654435761 % prios
		req.Payload = "w"
	} else {
		req.Op = clientproto.OpDelete
	}
	c.sent[req.ReqID] = time.Now()
	if err := clientproto.WriteRequest(c.bw, req); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readOne consumes one response and records its outcome.
func (c *conn) readOne() error {
	resp, err := clientproto.ReadResponse(c.br)
	if err != nil {
		return err
	}
	sent, ok := c.sent[resp.ReqID]
	if !ok {
		return fmt.Errorf("response for unknown reqID %d", resp.ReqID)
	}
	delete(c.sent, resp.ReqID)
	if err := resp.Err(); err != nil {
		// A typed server rejection: the load generator never sends invalid
		// requests, so any error code is a verdict failure — surface which
		// one, not just that the connection broke.
		return err
	}
	c.latencies = append(c.latencies, time.Since(sent))
	c.values = append(c.values, seqVal{seq: resp.ReqID & (1<<32 - 1), v: resp.Value})
	switch resp.Status {
	case clientproto.StatusInserted:
		c.insertIDs = append(c.insertIDs, resp.ID)
	case clientproto.StatusElem:
		c.deleteIDs = append(c.deleteIDs, resp.ID)
	case clientproto.StatusBottom:
		c.bottoms++
	}
	return nil
}

// runPhase pushes quota requests through the connection with at most
// window outstanding, then drains the in-flight tail.
func (c *conn) runPhase(insert bool, quota, window int, prios uint64) error {
	for i := 0; i < quota; i++ {
		if len(c.sent) >= window {
			if err := c.readOne(); err != nil {
				return err
			}
		}
		if err := c.sendOne(insert, prios); err != nil {
			return err
		}
	}
	for len(c.sent) > 0 {
		if err := c.readOne(); err != nil {
			return err
		}
	}
	return nil
}

// phaseStats summarizes one phase across all connections; lo[i] and hi[i]
// bound conn i's latency records for the phase.
func phaseStats(conns []*conn, lo, hi []int, elapsed time.Duration) string {
	var lat []time.Duration
	n := 0
	for i, c := range conns {
		for _, d := range c.latencies[lo[i]:hi[i]] {
			lat = append(lat, d)
			n++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return fmt.Sprintf("%d ops in %v (%.0f ops/s), latency p50=%v p90=%v p99=%v max=%v",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	servers := flag.String("servers", "", "comma-separated dpqd client addresses (required)")
	connsPer := flag.Int("conns", 4, "connections per server")
	inserts := flag.Int("inserts", 2000, "total inserts (deletes match)")
	window := flag.Int("window", 128, "outstanding requests per connection")
	prios := flag.Uint64("prios", 3, "priority spread of generated inserts")
	quick := flag.Bool("quick", false, "CI preset: 6000 inserts + 6000 deletes")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dpqload: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	if *servers == "" {
		fail("-servers is required")
	}
	if *quick {
		*inserts = 6000
	}
	addrs := strings.Split(*servers, ",")

	var conns []*conn
	for _, addr := range addrs {
		for i := 0; i < *connsPer; i++ {
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				fail("dial %s: %v", addr, err)
			}
			defer nc.Close()
			conns = append(conns, &conn{
				idx: len(conns), c: nc,
				br:   bufio.NewReader(nc),
				bw:   bufio.NewWriter(nc),
				sent: map[uint64]time.Time{},
			})
		}
	}

	// Phase quotas: spread inserts across connections, remainder on the
	// first ones; deletes mirror the insert quotas so totals match.
	quota := make([]int, len(conns))
	for i := 0; i < *inserts; i++ {
		quota[i%len(conns)]++
	}
	runAll := func(insert bool) error {
		var wg sync.WaitGroup
		errs := make([]error, len(conns))
		for i, c := range conns {
			wg.Add(1)
			go func(i int, c *conn) {
				defer wg.Done()
				errs[i] = c.runPhase(insert, quota[i], *window, *prios)
			}(i, c)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("conn %d: %v", i, err)
			}
		}
		return nil
	}

	latMark := func() []int {
		m := make([]int, len(conns))
		for i, c := range conns {
			m[i] = len(c.latencies)
		}
		return m
	}

	phaseStart := latMark()
	start := time.Now()
	if err := runAll(true); err != nil {
		fail("insert phase: %v", err)
	}
	insertElapsed := time.Since(start)
	insertEnd := latMark()

	start = time.Now()
	if err := runAll(false); err != nil {
		fail("delete phase: %v", err)
	}
	deleteElapsed := time.Since(start)
	deleteEnd := latMark()

	// Drain probe: the queue must now be empty, so one more delete gets ⊥.
	probe := conns[0]
	preBottoms := probe.bottoms
	if err := probe.sendOne(false, *prios); err != nil {
		fail("drain probe: %v", err)
	}
	if err := probe.readOne(); err != nil {
		fail("drain probe: %v", err)
	}
	drained := probe.bottoms == preBottoms+1

	// Verdicts.
	inserted := map[uint64]bool{}
	deleted := map[uint64]bool{}
	bottoms := 0
	for _, c := range conns {
		for _, id := range c.insertIDs {
			if inserted[id] {
				fail("element %d inserted twice", id)
			}
			inserted[id] = true
		}
		for _, id := range c.deleteIDs {
			if deleted[id] {
				fail("element %d deleted twice", id)
			}
			deleted[id] = true
		}
		bottoms += c.bottoms
		// Local consistency: in issue order (responses arrive out of order
		// under pipelining), a connection's serialization values must be
		// strictly increasing, because the connection is pinned to one host
		// and the cluster serialization respects each host's program order.
		sort.Slice(c.values, func(i, j int) bool { return c.values[i].seq < c.values[j].seq })
		for i := 1; i < len(c.values); i++ {
			if c.values[i].v <= c.values[i-1].v {
				fail("conn %d: serialization values not increasing in issue order: op %d→%d, op %d→%d",
					c.idx, c.values[i-1].seq, c.values[i-1].v, c.values[i].seq, c.values[i].v)
			}
		}
	}
	for id := range deleted {
		if !inserted[id] {
			fail("deleted element %d was never inserted", id)
		}
	}
	if len(inserted) != *inserts {
		fail("%d inserts acknowledged, want %d", len(inserted), *inserts)
	}
	if len(deleted) != *inserts {
		fail("%d elements deleted, want %d (%d ⊥ responses)", len(deleted), *inserts, bottoms)
	}
	if !drained {
		fail("drain probe did not return ⊥")
	}
	if bottoms != probe.bottoms-preBottoms {
		// Any ⊥ before the probe means a delete raced past the inserts,
		// which the two-phase barrier should have excluded.
		fail("unexpected ⊥ responses during the phases: %d", bottoms-1)
	}

	fmt.Printf("dpqload: insert phase: %s\n", phaseStats(conns, phaseStart, insertEnd, insertElapsed))
	fmt.Printf("dpqload: delete phase: %s\n", phaseStats(conns, insertEnd, deleteEnd, deleteElapsed))
	fmt.Printf("dpqload: OK inserts=%d deletes=%d conns=%d drained=%v\n",
		len(inserted), len(deleted), len(conns), drained)
}
