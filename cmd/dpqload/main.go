// Command dpqload is the closed-loop load generator and checker for a
// dpqd cluster. It opens -conns pipelined connections per daemon, runs an
// insert phase followed by a delete phase of equal size, and then verifies
// the cluster behaved like one priority queue:
//
//   - every inserted element id is consumed exactly once and nothing else
//     appears (exactly-once end to end, through the reliable transport's
//     dedup, the daemons' completion routing and the lease protocol);
//   - no delete returns ⊥ while the queue is non-empty (except transiently
//     in -ack-mode nack, where every element is out under a lease once),
//     and one trailing delete after the drain does return ⊥;
//   - each connection's serialization values are strictly increasing
//     (local consistency: a connection is pinned to one host, so its
//     responses follow that host's issue order).
//
// -ack-mode drives the lease protocol: "ack" (default) acknowledges every
// delivered element, "nack" rejects each element's first delivery and
// verifies the redelivery arrives with delivery count 2, "none" leaves
// every element leased (the pre-lease behaviour).
//
// It reports per-phase throughput and response latency percentiles.
// -quick (6000 inserts + 6000 deletes + 1 drain probe) is the CI preset.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpq/internal/clientproto"
	"dpq/internal/mathx"
)

// seqVal pairs a response's serialization value with its request's
// per-connection issue sequence.
type seqVal struct {
	seq uint64
	v   int64
}

// pendingReq is one in-flight request: when it was sent and what it was,
// so rejections and lease responses can be routed and retryable failures
// (StatusUnavailable during a peer outage) can re-issue the request.
type pendingReq struct {
	at      time.Time
	op      uint8
	id      uint64 // OpAck/OpNack: the leased element
	prio    uint64 // OpInsert: original priority, for re-issue
	payload string // OpInsert: original payload, for re-issue
	retries int    // re-issues so far
}

// conn is one pipelined client connection with its recorded outcomes.
type conn struct {
	idx      int
	c        net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	seq      uint64
	sent     map[uint64]pendingReq // reqID → in-flight request
	mode     string                // ack, nack or none
	consumed *atomic.Int64         // cluster-wide consumed elements (ack/nack modes)
	// maxRetries bounds per-request re-issues of retryable rejections
	// (a cluster serving degraded answers StatusUnavailable for work that
	// needs a crashed peer); 0 turns any retryable rejection into a
	// failure. allowRedeliv accepts delivery counts > 1 in ack mode — a
	// crash-recovery drain legitimately sees expiry redeliveries.
	maxRetries   int
	allowRedeliv bool
	rng          *rand.Rand

	values       []seqVal // serialization values tagged with issue order
	retries      int      // retryable rejections re-issued
	insertIDs    []uint64
	deleteIDs    []uint64 // consumed elements (delivered, in "none" mode)
	bottoms      int
	acked        int
	nacked       int
	redeliveries int
	latencies    []time.Duration
}

func (c *conn) nextReqID() uint64 {
	c.seq++
	return uint64(c.idx)<<32 | c.seq
}

func (c *conn) write(req *clientproto.Request, pend pendingReq) error {
	pend.at = time.Now()
	pend.op = req.Op
	c.sent[req.ReqID] = pend
	if err := clientproto.WriteRequest(c.bw, req); err != nil {
		return err
	}
	return c.bw.Flush()
}

// sendOne issues one request (insert below the priority bound, or delete).
func (c *conn) sendOne(insert bool, prios uint64) error {
	req := &clientproto.Request{ReqID: c.nextReqID()}
	if insert {
		req.Op = clientproto.OpInsert
		// Spread priorities deterministically; the daemon maps them into
		// its protocol's universe.
		req.Prio = c.seq * 2654435761 % prios
		req.Payload = "w"
	} else {
		req.Op = clientproto.OpDelete
	}
	return c.write(req, pendingReq{prio: req.Prio, payload: req.Payload})
}

// settle acks or nacks a leased element.
func (c *conn) settle(op uint8, id uint64) error {
	return c.write(&clientproto.Request{ReqID: c.nextReqID(), Op: op, ID: id}, pendingReq{id: id})
}

// retry re-issues a retryably rejected request under a fresh reqID after
// a jittered exponential backoff. The backoff sleeps on the connection's
// goroutine — stalling this pipeline while a peer daemon restarts is the
// point.
func (c *conn) retry(pend pendingReq) error {
	d := 10 * time.Millisecond << uint(pend.retries)
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	time.Sleep(d/2 + time.Duration(c.rng.Int63n(int64(d))))
	c.retries++
	req := &clientproto.Request{
		ReqID: c.nextReqID(), Op: pend.op, ID: pend.id,
		Prio: pend.prio, Payload: pend.payload,
	}
	return c.write(req, pendingReq{
		id: pend.id, prio: pend.prio, payload: pend.payload,
		retries: pend.retries + 1,
	})
}

// readOne consumes one response, records its outcome and drives the lease
// protocol for delivered elements according to the connection's mode.
func (c *conn) readOne() error {
	resp, err := clientproto.ReadResponse(c.br)
	if err != nil {
		return err
	}
	pend, ok := c.sent[resp.ReqID]
	if !ok {
		return fmt.Errorf("response for unknown reqID %d", resp.ReqID)
	}
	delete(c.sent, resp.ReqID)
	if resp.Retryable() {
		// The cluster is serving degraded (a peer daemon is down): the
		// request is valid, the cluster just cannot complete it yet. Back
		// off and re-issue, up to the retry budget.
		if pend.retries >= c.maxRetries {
			return fmt.Errorf("gave up after %d retries: %v", pend.retries, resp.Err())
		}
		return c.retry(pend)
	}
	if err := resp.Err(); err != nil {
		// A typed server rejection: the load generator never sends invalid
		// requests, so any error code is a verdict failure — surface which
		// one, not just that the connection broke.
		return err
	}
	c.latencies = append(c.latencies, time.Since(pend.at))
	if (pend.op == clientproto.OpInsert || pend.op == clientproto.OpDelete) && resp.Value >= 0 {
		// Only heap operations carry serialization values; ack/nack are
		// serving-layer bookkeeping outside the order ≺. A negative value
		// marks a degraded-mode insert that was durably logged but not yet
		// serialized — it has no place in the order.
		c.values = append(c.values, seqVal{seq: resp.ReqID & (1<<32 - 1), v: resp.Value})
	}
	switch resp.Status {
	case clientproto.StatusInserted:
		c.insertIDs = append(c.insertIDs, resp.ID)
	case clientproto.StatusElem:
		switch c.mode {
		case "ack":
			if resp.Deliveries != 1 && !c.allowRedeliv {
				return fmt.Errorf("element %d delivered %d times without any nack or expiry", resp.ID, resp.Deliveries)
			}
			if resp.Deliveries > 1 {
				c.redeliveries++
			}
			c.deleteIDs = append(c.deleteIDs, resp.ID)
			c.consumed.Add(1)
			return c.settle(clientproto.OpAck, resp.ID)
		case "nack":
			switch resp.Deliveries {
			case 1:
				return c.settle(clientproto.OpNack, resp.ID)
			case 2:
				c.redeliveries++
				c.deleteIDs = append(c.deleteIDs, resp.ID)
				c.consumed.Add(1)
				return c.settle(clientproto.OpAck, resp.ID)
			default:
				return fmt.Errorf("element %d delivered %d times, want at most 2", resp.ID, resp.Deliveries)
			}
		default: // none: leave the lease hanging
			c.deleteIDs = append(c.deleteIDs, resp.ID)
		}
	case clientproto.StatusBottom:
		c.bottoms++
	case clientproto.StatusAcked:
		c.acked++
	case clientproto.StatusNacked:
		c.nacked++
	}
	return nil
}

// runPhase pushes quota requests through the connection with at most
// window outstanding, then drains the in-flight tail (including the acks
// chained onto deliveries).
func (c *conn) runPhase(insert bool, quota, window int, prios uint64) error {
	for i := 0; i < quota; i++ {
		if len(c.sent) >= window {
			if err := c.readOne(); err != nil {
				return err
			}
		}
		if err := c.sendOne(insert, prios); err != nil {
			return err
		}
	}
	for len(c.sent) > 0 {
		if err := c.readOne(); err != nil {
			return err
		}
	}
	return nil
}

// runDrain deletes (acking every delivery) until ⊥ means empty. In a
// delete-only workload against a quiesced cluster the queue size is
// monotone, so the first ⊥ means empty for good (patience 0). A cluster
// still reconciling after a restart returns transient ⊥s while orphaned
// elements are re-injected, so with a patience window a ⊥ only ends the
// drain once no element has been delivered for that long.
func (c *conn) runDrain(window int, patience time.Duration) error {
	sawBottom := false
	lastProgress := time.Now()
	for !sawBottom || len(c.sent) > 0 {
		if !sawBottom && len(c.sent) < window {
			if err := c.sendOne(false, 0); err != nil {
				return err
			}
			continue
		}
		preB, preD := c.bottoms, len(c.deleteIDs)
		if err := c.readOne(); err != nil {
			return err
		}
		if len(c.deleteIDs) > preD {
			lastProgress = time.Now()
		}
		if c.bottoms > preB {
			if patience <= 0 || time.Since(lastProgress) > patience {
				sawBottom = true
			} else if len(c.sent) == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}
	return nil
}

// runDeleteLoop keeps deleting until the cluster-wide consumed count
// reaches target (nack mode). A ⊥ here is not a verdict failure: with
// every element out under a lease at once the queue is transiently empty,
// so the loop backs off briefly and retries.
func (c *conn) runDeleteLoop(target int64, window int) error {
	for {
		if c.consumed.Load() >= target {
			for len(c.sent) > 0 {
				if err := c.readOne(); err != nil {
					return err
				}
			}
			return nil
		}
		if len(c.sent) < window {
			if err := c.sendOne(false, 0); err != nil {
				return err
			}
			continue
		}
		pre := c.bottoms
		if err := c.readOne(); err != nil {
			return err
		}
		if c.bottoms > pre {
			time.Sleep(time.Millisecond)
		}
	}
}

// percentile returns the p-quantile of the sorted latencies by the
// ceil-based nearest-rank definition: the smallest sample with at least
// ⌈p·n⌉ observations at or below it. Truncating the rank instead biases
// the tail low — p99 of 100 samples must be the 99th-smallest, not the
// 98th, and p99 of 4 samples is the maximum, not the second-largest.
func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	return lat[mathx.NearestRank(len(lat), p)]
}

// phaseStats summarizes one phase across all connections; lo[i] and hi[i]
// bound conn i's latency records for the phase.
func phaseStats(conns []*conn, lo, hi []int, elapsed time.Duration) string {
	var lat []time.Duration
	n := 0
	for i, c := range conns {
		for _, d := range c.latencies[lo[i]:hi[i]] {
			lat = append(lat, d)
			n++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return fmt.Sprintf("%d ops in %v (%.0f ops/s), latency p50=%v p90=%v p99=%v max=%v",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		percentile(lat, 0.50).Round(time.Microsecond), percentile(lat, 0.90).Round(time.Microsecond),
		percentile(lat, 0.99).Round(time.Microsecond), percentile(lat, 1.0).Round(time.Microsecond))
}

func main() {
	servers := flag.String("servers", "", "comma-separated dpqd client addresses (required)")
	connsPer := flag.Int("conns", 4, "connections per server")
	inserts := flag.Int("inserts", 2000, "total inserts (deletes match)")
	window := flag.Int("window", 128, "outstanding requests per connection")
	prios := flag.Uint64("prios", 3, "priority spread of generated inserts")
	ackMode := flag.String("ack-mode", "ack", "lease handling for delivered elements: ack, nack (reject first delivery, ack the redelivery) or none (leave leased)")
	phase := flag.String("phase", "full", "full: insert then delete; insert: inserts only (elements stay pending); drain: delete+ack a recovered cluster until empty")
	idsOut := flag.String("ids-out", "", "write acknowledged inserted ids (phase insert/full) or consumed ids (phase drain) to FILE, one per line")
	expectMin := flag.Int("expect-min", -1, "phase drain: fail unless at least this many elements were consumed")
	maxRetries := flag.Int("max-retries", 12, "re-issues per request on retryable rejections (StatusUnavailable while a peer daemon is down); 0 fails fast")
	drainPatience := flag.Duration("drain-patience", 0, "phase drain: treat ⊥ as empty only after this long without a delivery (reconciling clusters return transient ⊥s)")
	quick := flag.Bool("quick", false, "CI preset: 6000 inserts + 6000 deletes")
	relaxed := flag.Bool("relaxed", false, "target a -relax daemon: deletes retry past transient ⊥ (a relaxed sweep can miss elements buffered at another host) and the per-connection serialization monotonicity check is skipped (relaxed deliveries are not locally consistent)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dpqload: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	if *servers == "" {
		fail("-servers is required")
	}
	switch *ackMode {
	case "ack", "nack", "none":
	default:
		fail("unknown -ack-mode %q", *ackMode)
	}
	switch *phase {
	case "full", "insert":
	case "drain":
		// Draining must consume: unacked elements would go back into the
		// queue when their leases expire and the drain would never finish.
		*ackMode = "ack"
	default:
		fail("unknown -phase %q", *phase)
	}
	if *quick {
		*inserts = 6000
	}
	addrs := strings.Split(*servers, ",")

	var consumed atomic.Int64
	var conns []*conn
	for _, addr := range addrs {
		for i := 0; i < *connsPer; i++ {
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				fail("dial %s: %v", addr, err)
			}
			defer nc.Close()
			conns = append(conns, &conn{
				idx: len(conns), c: nc,
				br:           bufio.NewReader(nc),
				bw:           bufio.NewWriter(nc),
				sent:         map[uint64]pendingReq{},
				mode:         *ackMode,
				consumed:     &consumed,
				maxRetries:   *maxRetries,
				allowRedeliv: *phase == "drain",
				rng:          rand.New(rand.NewSource(int64(len(conns)) + 1)),
			})
		}
	}

	// Phase quotas: spread inserts across connections, remainder on the
	// first ones; deletes mirror the insert quotas so totals match.
	quota := make([]int, len(conns))
	for i := 0; i < *inserts; i++ {
		quota[i%len(conns)]++
	}
	runAll := func(run func(i int, c *conn) error) error {
		var wg sync.WaitGroup
		errs := make([]error, len(conns))
		for i, c := range conns {
			wg.Add(1)
			go func(i int, c *conn) {
				defer wg.Done()
				errs[i] = run(i, c)
			}(i, c)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("conn %d: %v", i, err)
			}
		}
		return nil
	}

	latMark := func() []int {
		m := make([]int, len(conns))
		for i, c := range conns {
			m[i] = len(c.latencies)
		}
		return m
	}
	totalRetries := func() int {
		n := 0
		for _, c := range conns {
			n += c.retries
		}
		return n
	}

	// writeIDs dumps acknowledged ids for cross-run comparisons (the
	// crash-recovery harness diffs the ids inserted before a SIGKILL
	// against the ids drained after recovery). Written even when a phase
	// fails mid-flight: an acknowledged insert is durable no matter how
	// the run ends.
	writeIDs := func(pick func(*conn) []uint64) {
		if *idsOut == "" {
			return
		}
		var b strings.Builder
		for _, c := range conns {
			for _, id := range pick(c) {
				fmt.Fprintf(&b, "%d\n", id)
			}
		}
		if err := os.WriteFile(*idsOut, []byte(b.String()), 0o644); err != nil {
			fail("%v", err)
		}
	}

	if *phase == "drain" {
		start := time.Now()
		drainStart := latMark()
		if err := runAll(func(i int, c *conn) error { return c.runDrain(*window, *drainPatience) }); err != nil {
			fail("drain: %v", err)
		}
		elapsed := time.Since(start)
		consumed := map[uint64]bool{}
		acked := 0
		for _, c := range conns {
			for _, id := range c.deleteIDs {
				if consumed[id] {
					fail("element %d consumed twice", id)
				}
				consumed[id] = true
			}
			acked += c.acked
		}
		if acked != len(consumed) {
			fail("%d elements consumed but %d acked", len(consumed), acked)
		}
		if *expectMin >= 0 && len(consumed) < *expectMin {
			fail("drained %d elements, want at least %d", len(consumed), *expectMin)
		}
		writeIDs(func(c *conn) []uint64 { return c.deleteIDs })
		fmt.Printf("dpqload: drain phase: %s retries=%d\n", phaseStats(conns, drainStart, latMark(), elapsed), totalRetries())
		fmt.Printf("dpqload: OK drained=%d acked=%d retries=%d conns=%d\n", len(consumed), acked, totalRetries(), len(conns))
		return
	}

	phaseStart := latMark()
	start := time.Now()
	if err := runAll(func(i int, c *conn) error { return c.runPhase(true, quota[i], *window, *prios) }); err != nil {
		writeIDs(func(c *conn) []uint64 { return c.insertIDs })
		fail("insert phase: %v", err)
	}
	insertElapsed := time.Since(start)
	insertEnd := latMark()
	insertRetries := totalRetries()
	writeIDs(func(c *conn) []uint64 { return c.insertIDs })

	if *phase == "insert" {
		inserted := map[uint64]bool{}
		for _, c := range conns {
			for _, id := range c.insertIDs {
				if inserted[id] {
					fail("element %d inserted twice", id)
				}
				inserted[id] = true
			}
		}
		if len(inserted) != *inserts {
			fail("%d inserts acknowledged, want %d", len(inserted), *inserts)
		}
		fmt.Printf("dpqload: insert phase: %s retries=%d\n", phaseStats(conns, phaseStart, insertEnd, insertElapsed), insertRetries)
		fmt.Printf("dpqload: OK inserts=%d retries=%d conns=%d (left pending)\n", len(inserted), insertRetries, len(conns))
		return
	}

	start = time.Now()
	deletePhase := func(i int, c *conn) error { return c.runPhase(false, quota[i], *window, *prios) }
	if *ackMode == "nack" || *relaxed {
		// Redeliveries roam (nack mode): a nacked element may come back on
		// any connection. Relaxed daemons return transient ⊥s: a delete's
		// sweep can find every local heap empty while elements sit in
		// another host's prefetch buffer. Both cases target the
		// cluster-wide consumed count instead of per-connection quotas.
		target := int64(*inserts)
		deletePhase = func(i int, c *conn) error { return c.runDeleteLoop(target, *window) }
	}
	if err := runAll(deletePhase); err != nil {
		fail("delete phase: %v", err)
	}
	deleteElapsed := time.Since(start)
	deleteEnd := latMark()

	// Drain probe: the queue must now be empty, so one more delete gets ⊥.
	probe := conns[0]
	preBottoms := probe.bottoms
	if err := probe.sendOne(false, *prios); err != nil {
		fail("drain probe: %v", err)
	}
	for len(probe.sent) > 0 {
		if err := probe.readOne(); err != nil {
			fail("drain probe: %v", err)
		}
	}
	drained := probe.bottoms == preBottoms+1

	// Verdicts.
	inserted := map[uint64]bool{}
	deleted := map[uint64]bool{}
	bottoms, acked, nacked, redeliveries := 0, 0, 0, 0
	for _, c := range conns {
		for _, id := range c.insertIDs {
			if inserted[id] {
				fail("element %d inserted twice", id)
			}
			inserted[id] = true
		}
		for _, id := range c.deleteIDs {
			if deleted[id] {
				fail("element %d consumed twice", id)
			}
			deleted[id] = true
		}
		bottoms += c.bottoms
		acked += c.acked
		nacked += c.nacked
		redeliveries += c.redeliveries
		// Local consistency: in issue order (responses arrive out of order
		// under pipelining), a connection's serialization values must be
		// strictly increasing, because the connection is pinned to one host
		// and the cluster serialization respects each host's program order.
		// A relaxed daemon deliberately gives this up (a delete issued
		// before an insert can serialize after it), so -relaxed skips it.
		if !*relaxed {
			sort.Slice(c.values, func(i, j int) bool { return c.values[i].seq < c.values[j].seq })
			for i := 1; i < len(c.values); i++ {
				if c.values[i].v <= c.values[i-1].v {
					fail("conn %d: serialization values not increasing in issue order: op %d→%d, op %d→%d",
						c.idx, c.values[i-1].seq, c.values[i-1].v, c.values[i].seq, c.values[i].v)
				}
			}
		}
	}
	for id := range deleted {
		if !inserted[id] {
			fail("consumed element %d was never inserted", id)
		}
	}
	if len(inserted) != *inserts {
		fail("%d inserts acknowledged, want %d", len(inserted), *inserts)
	}
	if len(deleted) != *inserts {
		fail("%d elements consumed, want %d (%d ⊥ responses)", len(deleted), *inserts, bottoms)
	}
	if !drained {
		fail("drain probe did not return ⊥")
	}
	switch *ackMode {
	case "ack":
		if acked != *inserts {
			fail("%d elements acked, want %d", acked, *inserts)
		}
		if bottoms != probe.bottoms-preBottoms && !*relaxed {
			// Any ⊥ before the probe means a delete raced past the inserts,
			// which the two-phase barrier should have excluded. A relaxed
			// daemon emits transient ⊥s near the end of the drain (in-flight
			// deliveries make the queue look empty to a concurrent sweep),
			// so -relaxed only requires that every element was consumed.
			fail("unexpected ⊥ responses during the phases: %d", bottoms-1)
		}
	case "nack":
		// Every element was rejected once and consumed on its redelivery;
		// transient ⊥ during the churn is expected and uncounted.
		if nacked != *inserts || acked != *inserts || redeliveries != *inserts {
			fail("nacked=%d acked=%d redeliveries=%d, want all %d", nacked, acked, redeliveries, *inserts)
		}
	case "none":
		if bottoms != probe.bottoms-preBottoms {
			fail("unexpected ⊥ responses during the phases: %d", bottoms-1)
		}
	}

	fmt.Printf("dpqload: insert phase: %s retries=%d\n", phaseStats(conns, phaseStart, insertEnd, insertElapsed), insertRetries)
	fmt.Printf("dpqload: delete phase: %s retries=%d\n", phaseStats(conns, insertEnd, deleteEnd, deleteElapsed), totalRetries()-insertRetries)
	fmt.Printf("dpqload: OK inserts=%d consumed=%d acked=%d nacked=%d redelivered=%d retries=%d conns=%d mode=%s drained=%v\n",
		len(inserted), len(deleted), acked, nacked, redeliveries, totalRetries(), len(conns), *ackMode, drained)
}
