package main

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the ceil-based nearest-rank definition on
// a known distribution: p99 of 100 samples is the 99th-smallest. The old
// truncating index biased every tail percentile one rank low on exact
// boundaries (p99 of 4 samples picked the 2nd-largest instead of the max).
func TestPercentileNearestRank(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
		{0.001, 1 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(lat, c.p); got != c.want {
			t.Errorf("p%g of 1..100ms = %v, want %v", c.p*100, got, c.want)
		}
	}

	small := []time.Duration{10, 20, 30, 40}
	if got := percentile(small, 0.99); got != 40 {
		t.Errorf("p99 of 4 samples = %v, want the max (40)", got)
	}
	if got := percentile(small, 0.50); got != 20 {
		t.Errorf("p50 of 4 samples = %v, want 20", got)
	}
	if got := percentile(small, 0.25); got != 10 {
		t.Errorf("p25 of 4 samples = %v, want 10", got)
	}

	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty set percentile = %v, want 0", got)
	}
	one := []time.Duration{7}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := percentile(one, p); got != 7 {
			t.Errorf("p%g of a single sample = %v, want 7", p*100, got)
		}
	}
}
