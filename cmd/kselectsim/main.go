// Command kselectsim runs the standalone KSelect protocol and verifies the
// result against a local sort.
//
// Usage:
//
//	kselectsim [-n 64] [-m 4096] [-k 2048] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dpq/internal/hashutil"
	"dpq/internal/kselect"
	"dpq/internal/ldb"
	"dpq/internal/mathx"
	"dpq/internal/obs"
)

func main() {
	n := flag.Int("n", 64, "number of processes")
	m := flag.Int("m", 4096, "number of elements (poly(n))")
	k := flag.Int64("k", 0, "target rank (default m/2)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 1, "round-engine worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	of := obs.AddFlags()
	flag.Parse()
	if *k == 0 {
		*k = int64(*m / 2)
	}

	sess, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kselectsim:", err)
		os.Exit(1)
	}
	ov := ldb.New(*n, hashutil.New(*seed))
	sel := kselect.New(ov, hashutil.New(*seed+1))
	elems := sel.LoadUniform(*m, uint64(*m)*4, *seed+2)
	eng := sel.NewSyncEngine(*seed + 3)
	if *workers != 1 {
		eng.SetParallel(*workers)
	}
	eng.SetBatchObserver(sess.BatchObserver())
	sel.SetObs(sess.Collector())
	sel.Start(eng.Context(sel.Anchor()), *k)
	if !eng.RunUntil(sel.Done, 50000*(mathx.Log2Ceil(*n)+3)) {
		fmt.Fprintln(os.Stderr, "kselectsim: selection did not terminate")
		os.Exit(1)
	}
	if err := sess.Close(eng.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, "kselectsim:", err)
		os.Exit(1)
	}

	res := sel.Result()
	met := eng.Metrics()
	fmt.Printf("KSelect  n=%d m=%d k=%d\n", *n, *m, *k)
	fmt.Printf("  result            %v\n", res.Elem)
	fmt.Printf("  rounds            %d\n", met.Rounds)
	fmt.Printf("  messages          %d (max %d bits, congestion %d)\n", met.Messages, met.MaxMessageBit, met.Congestion)
	fmt.Printf("  candidates        %d after phase 1, %d at phase 3 (Lemmas 4.4/4.7)\n",
		res.CandidatesAfterP1, res.CandidatesAtP3)
	fmt.Printf("  phase-2 iters     %d (retries %d)\n", res.Phase2Iters, res.Retries)
	mean, max := sel.HolderStats()
	fmt.Printf("  tree holders/node %.2f mean, %d max (Lemma 4.5)\n", mean, max)

	sort.Slice(elems, func(i, j int) bool { return elems[i].Less(elems[j]) })
	if want := elems[*k-1]; res.Elem != want {
		fmt.Fprintf(os.Stderr, "kselectsim: WRONG — local sort says %v\n", want)
		os.Exit(1)
	}
	fmt.Println("  verification      matches the local sort ✓")
}
