// Command skeapsim runs a Skeap network under a configurable workload and
// prints the protocol metrics plus a semantics verdict.
//
// Usage:
//
//	skeapsim [-n 64] [-p 4] [-lambda 4] [-rounds 50] [-mix 0.6] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpq/internal/mathx"
	"dpq/internal/obs"
	"dpq/internal/semantics"
	"dpq/internal/skeap"
	"dpq/internal/workload"
)

func main() {
	n := flag.Int("n", 64, "number of processes")
	p := flag.Int("p", 4, "number of priorities |𝒫| (constant)")
	lambda := flag.Int("lambda", 4, "injection rate λ per node per round")
	rounds := flag.Int("rounds", 50, "injection horizon in rounds")
	mix := flag.Float64("mix", 0.6, "fraction of inserts")
	seed := flag.Uint64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "print every DeleteMin outcome")
	record := flag.String("record", "", "write the generated workload to FILE")
	replay := flag.String("replay", "", "replay a recorded workload from FILE (overrides generation)")
	maxHeap := flag.Bool("maxheap", false, "invert the delete preference (DeleteMax, §1.2)")
	lifo := flag.Bool("lifo", false, "pop the newest element per priority (stack variant)")
	workers := flag.Int("workers", 1, "round-engine worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	of := obs.AddFlags()
	flag.Parse()

	sess, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "skeapsim:", err)
		os.Exit(1)
	}
	h := skeap.New(skeap.Config{N: *n, P: *p, Seed: *seed, MaxHeap: *maxHeap, LIFO: *lifo})
	eng := h.NewSyncEngine()
	if *workers != 1 {
		eng.SetParallel(*workers)
	}
	eng.SetBatchObserver(sess.BatchObserver())
	h.SetObs(sess.Collector())
	stream := loadOrGenerate(*replay, *record, *rounds, workload.Config{
		N: *n, Rate: *lambda, InsertFrac: *mix,
		Dist: workload.Uniform, Bound: uint64(*p), Seed: *seed + 1,
	})
	for _, ops := range stream {
		for _, op := range ops {
			if op.Kind == workload.OpInsert {
				h.InjectInsert(op.Host, op.ID, int(op.Prio-1), "")
			} else {
				h.InjectDelete(op.Host)
			}
		}
		eng.Step()
	}
	if !eng.RunUntil(h.Done, 100000*(mathx.Log2Ceil(*n)+3)) {
		fmt.Fprintln(os.Stderr, "skeapsim: protocol did not drain the workload")
		os.Exit(1)
	}
	if err := sess.Close(eng.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, "skeapsim:", err)
		os.Exit(1)
	}

	m := eng.Metrics()
	fmt.Printf("Skeap  n=%d |𝒫|=%d Λ=%d horizon=%d\n", *n, *p, *lambda, *rounds)
	fmt.Printf("  operations     %d (%d iterations)\n", h.Trace().Len(), h.Iterations())
	fmt.Printf("  rounds         %d\n", m.Rounds)
	fmt.Printf("  messages       %d (max %d bits, congestion %d)\n", m.Messages, m.MaxMessageBit, m.Congestion)

	if *verbose {
		for _, op := range h.Trace().Ops() {
			if op.Kind == semantics.DeleteMin {
				fmt.Printf("  node %2d DeleteMin → %v\n", op.Node, op.Result)
			}
		}
	}

	switch {
	case *lifo:
		// LIFO order is not heap order: the oracle replay does not apply;
		// local consistency still must hold.
		rep := semantics.CheckLocalConsistency(h.Trace())
		if rep.Ok() {
			fmt.Println("  semantics      locally consistent ✓ (stack order; see internal/queue.CheckStack)")
		} else {
			fmt.Printf("  semantics      VIOLATED:\n%s", rep.Error())
			os.Exit(1)
		}
	case *maxHeap:
		rep := semantics.CheckAllMax(h.Trace(), semantics.FIFO)
		if rep.Ok() {
			fmt.Println("  semantics      sequentially consistent + heap consistent ✓ (max-heap)")
		} else {
			fmt.Printf("  semantics      VIOLATED:\n%s", rep.Error())
			os.Exit(1)
		}
	default:
		rep := semantics.CheckAll(h.Trace(), semantics.FIFO)
		if rep.Ok() {
			fmt.Println("  semantics      sequentially consistent + heap consistent ✓")
		} else {
			fmt.Printf("  semantics      VIOLATED:\n%s", rep.Error())
			os.Exit(1)
		}
	}
}

// loadOrGenerate returns the per-round operation stream: replayed from a
// recording when replayPath is set, otherwise generated (and optionally
// recorded to recordPath).
func loadOrGenerate(replayPath, recordPath string, rounds int, cfg workload.Config) [][]workload.Op {
	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		defer f.Close()
		stream, err := workload.ReadRounds(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		return stream
	}
	gen := workload.New(cfg)
	stream := make([][]workload.Op, rounds)
	for r := range stream {
		stream[r] = gen.Round()
	}
	if recordPath != "" {
		f, err := os.Create(recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "record:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteRounds(f, stream); err != nil {
			fmt.Fprintln(os.Stderr, "record:", err)
			os.Exit(1)
		}
	}
	return stream
}
