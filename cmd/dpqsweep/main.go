// Command dpqsweep runs the workload sweep matrix: Skeap, Seap and
// KSelect across Zipf skew, hot-host contention, phase-shifting load and
// burst/drain cycles, each cell checked against the analytical twin's
// predicted round/congestion/bit envelopes (Thm 3.2, 4.2, 5.1) and
// replayed against the sequential oracle. In the style of ddtxn's bm.py,
// experiments are selected by name and ad-hoc matrices are cross products
// of `key=v1,v2` axes.
//
// Usage:
//
//	dpqsweep [-exp zipf,contention|all] [-matrix SPEC] [-quick] [-strict]
//	         [-json FILE] [-workers N] [-seed S] [-calibrate] [-list]
//
// Examples:
//
//	dpqsweep -quick                         # CI matrix, verdict summary
//	dpqsweep -exp zipf,burst -json out.json # two experiments, JSON matrix
//	dpqsweep -matrix "proto=seap;n=16,64;dist=zipf;zipfs=0.8,1.6"
//	dpqsweep -quick -strict                 # exit 1 on any DIVERGED cell
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"dpq/internal/sweep"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dpqsweep: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment names (see -list), or 'all'")
	matrix := flag.String("matrix", "", "ad-hoc matrix spec: 'proto=skeap,seap;n=16,64;dist=zipf;zipfs=1.6' (overrides -exp)")
	quick := flag.Bool("quick", false, "CI-sized matrix")
	strict := flag.Bool("strict", false, "exit 1 on any DIVERGED cell, conformance failure or engine-pair mismatch")
	jsonOut := flag.String("json", "", "write the dpq-sweep/1 result matrix to FILE")
	workers := flag.Int("workers", 0, "worker-pool size for parallel cells (0 = GOMAXPROCS, floored at 2)")
	seed := flag.Uint64("seed", 1, "deterministic workload seed")
	calibrate := flag.Bool("calibrate", false, "refit the twin constants from this run and print them")
	list := flag.Bool("list", false, "list the named experiments and exit")
	flag.Parse()

	opt := sweep.MatrixOptions{Quick: *quick, Seed: *seed, Workers: *workers}
	all := sweep.DefaultMatrix(opt)

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		for _, e := range all {
			fmt.Fprintf(tw, "%s\t%d cells\t%s\n", e.Name, len(e.Cells), e.Desc)
		}
		tw.Flush()
		return
	}

	var exps []sweep.Experiment
	if *matrix != "" {
		e, err := sweep.ParseMatrix(*matrix, opt)
		if err != nil {
			fail("%v", err)
		}
		exps = []sweep.Experiment{e}
	} else if *exp == "all" {
		exps = all
	} else {
		byName := map[string]sweep.Experiment{}
		for _, e := range all {
			byName[e.Name] = e
		}
		for _, name := range strings.Split(*exp, ",") {
			e, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fail("unknown experiment %q (use -list)", name)
			}
			exps = append(exps, e)
		}
	}

	f, err := sweep.Run(exps, nil, opt, os.Stderr)
	if err != nil {
		fail("%v", err)
	}

	if *calibrate {
		var results []sweep.Result
		for _, er := range f.Experiments {
			results = append(results, er.Cells...)
		}
		fitted := sweep.Calibrate(results, sweep.DefaultTwin(), 2)
		for proto, co := range fitted.Coeffs {
			if proto == sweep.KeyRelaxSampleK {
				fmt.Printf("calibrated %-8s mean rank error ≤ %.1f·(n/k)%+.1f\n", proto, co.RankA, co.RankB)
				continue
			}
			fmt.Printf("calibrated %-8s rounds ≤ %.1f·L%+.1f  congestion ≤ %.1f·shape%+.1f  bits ≤ %.1f·shape%+.1f\n",
				proto, co.RoundsA, co.RoundsB, co.CongA, co.CongB, co.BitsA, co.BitsB)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tcell\trounds/batch\tpredicted\tcongestion\tpredicted\tmaxBits\tpredicted\toracle\tverdict")
	for _, er := range f.Experiments {
		for _, r := range er.Cells {
			oracle := "ok"
			if !r.Conform.OK {
				oracle = "FAIL"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%d\t%.1f\t%d\t%.1f\t%s\t%s\n",
				er.Name, r.Cell.Label(),
				r.Measured.RoundsPerBatch, r.Predicted.RoundsPerBatch,
				r.Measured.Congestion, r.Predicted.Congestion,
				r.Measured.MaxMessageBits, r.Predicted.MaxMessageBits,
				oracle, r.Verdict)
		}
		for _, p := range er.EnginePairs {
			fmt.Fprintf(tw, "%s\t%s\tserial %.1fms vs parallel %.1fms (%d workers)\tspeedup %.2fx\tmetrics identical: %v\n",
				er.Name, p.Label, float64(p.SerialWallNs)/1e6, float64(p.ParallelWallNs)/1e6, p.Workers, p.Speedup, p.MetricsIdentical)
		}
	}
	tw.Flush()

	// Relaxed cells are judged on rank error, not the cost envelopes —
	// print their frontier in its own table.
	var haveRelax bool
	for _, er := range f.Experiments {
		for _, r := range er.Cells {
			if r.Measured.RankMax > 0 || r.Measured.RankMean > 0 {
				haveRelax = true
			}
		}
	}
	if haveRelax {
		rt := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(rt, "experiment\trelaxed cell\trank mean\tpredicted\trank max\trank p99\temptyMisses\tverdict")
		for _, er := range f.Experiments {
			for _, r := range er.Cells {
				if r.Cell.Relax == "" || r.Cell.Relax == "strict" {
					continue
				}
				pred := "—"
				if r.Predicted.RankMean > 0 {
					pred = fmt.Sprintf("%.1f", r.Predicted.RankMean)
				}
				fmt.Fprintf(rt, "%s\t%s\t%.2f\t%s\t%d\t%d\t%d\t%s\n",
					er.Name, r.Cell.Label(), r.Measured.RankMean, pred,
					r.Measured.RankMax, r.Measured.RankP99, r.Measured.EmptyMisses, r.Verdict)
			}
		}
		rt.Flush()
	}

	fmt.Printf("sweep: %d cells, %d diverged, %d conformance failures, %d engine-pair mismatches\n",
		f.Cells, f.Diverged, f.ConformFailures, f.PairMismatches)

	if *jsonOut != "" {
		out, err := os.Create(*jsonOut)
		if err != nil {
			fail("%v", err)
		}
		if err := f.Encode(out); err != nil {
			fail("%v", err)
		}
		out.Close()
	}
	if *strict && !f.Clean() {
		fail("strict mode: matrix not clean")
	}
}
