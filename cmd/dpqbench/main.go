// Command dpqbench is the reproducible engine micro-benchmark: for each
// protocol (skeap, seap, kselect) and process count it drives one
// operation batch to completion on the serial round engine and on the
// worker-pool engine, and reports rounds/sec, ns per node activation and
// heap allocations per round. The parallel engine is trace-identical to
// the serial one, so the two rows of a pair execute the same rounds and
// messages — any wall-clock difference is pure engine overhead or
// speedup.
//
// Results are written as `dpq-bench/1` JSON (committed as BENCH_5.json
// and, for the GOMAXPROCS=4 serial-vs-parallel pairing, BENCH_6.json;
// BENCH_9.json adds the -relax dimension: the seap workload served by
// the relaxation engine, strict vs SampleK(k=2,4) vs BatchLocal;
// BENCH_10.json adds the -scale dimension: large-n skeap with a bounded
// workload, tracking memory bytes/node — the quantity that decides how
// big a simulation fits in a memory budget).
// With -baseline the run compares itself against a previous result file
// and fails when any matching case allocates >2x per round or loses more
// than 25% rounds/sec — the CI bench-smoke job uses this to keep the hot
// paths allocation-free. The rounds/sec gate compares wall clock, so it
// only means something when baseline and run share hardware; disable it
// with -speedtol 0 when comparing across hosts.
//
// Usage:
//
//	dpqbench [-quick] [-json FILE] [-baseline FILE] [-speedtol F]
//	         [-workers N] [-seed S]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dpq/internal/hashutil"
	"dpq/internal/kselect"
	"dpq/internal/ldb"
	"dpq/internal/mathx"
	"dpq/internal/prio"
	"dpq/internal/relax"
	"dpq/internal/seap"
	"dpq/internal/sim"
	"dpq/internal/skeap"
)

// Case is one (protocol, n, engine) measurement.
type Case struct {
	Proto           string  `json:"proto"`
	N               int     `json:"n"`
	Engine          string  `json:"engine"` // "serial" or "parallel"
	Workers         int     `json:"workers"`
	Rounds          int     `json:"rounds"`
	Messages        int64   `json:"messages"`
	Activations     int64   `json:"activations"` // rounds × virtual nodes
	WallNs          int64   `json:"wallNs"`
	RoundsPerSec    float64 `json:"roundsPerSec"`
	NsPerActivation float64 `json:"nsPerActivation"`
	AllocsPerRound  float64 `json:"allocsPerRound"`
	AllocKBPerRound float64 `json:"allocKBPerRound"`
	// Memory footprint per virtual node after the run (GC'd): the engine's
	// own buffers, and the whole process heap. The -scale cases exist to
	// track these; -baseline gates on the heap number.
	EngineBytesPerNode float64 `json:"engineBytesPerNode,omitempty"`
	HeapBytesPerNode   float64 `json:"heapBytesPerNode,omitempty"`
}

// File is the dpq-bench/1 result schema.
type File struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"goVersion"`
	GoMaxProcs int    `json:"goMaxProcs"`
	Quick      bool   `json:"quick"`
	Seed       uint64 `json:"seed"`
	Cases      []Case `json:"cases"`
}

const schema = "dpq-bench/1"

func maxRounds(n int) int { return 20000 * (mathx.Log2Ceil(n) + 3) }

// batch describes one prepared run: start kicks the protocol off, done
// reports completion, virt is the virtual node count for the activation
// metric.
type batch struct {
	eng   *sim.SyncEngine
	start func()
	done  func() bool
	virt  int
}

func prepSkeap(n, opsPerNode, workers int, seed uint64) batch {
	h := skeap.New(skeap.Config{N: n, P: 4, Seed: seed})
	h.SetAutoRepeat(false)
	rnd := hashutil.NewRand(seed + 1)
	id := prio.ElemID(1)
	for host := 0; host < n; host++ {
		for i := 0; i < opsPerNode; i++ {
			if rnd.Bool(0.6) {
				h.InjectInsert(host, id, rnd.Intn(4), "")
				id++
			} else {
				h.InjectDelete(host)
			}
		}
	}
	eng := h.NewSyncEngine()
	eng.SetParallel(workers)
	return batch{
		eng:   eng,
		start: func() { h.StartIteration(eng.Context(h.Overlay().Anchor)) },
		done:  h.Done,
		virt:  h.Overlay().NumVirtual(),
	}
}

func prepSeap(n, opsPerNode, workers int, seed uint64) batch {
	bound := uint64(n) * uint64(n) * 16
	h := seap.New(seap.Config{N: n, PrioBound: bound, Seed: seed})
	h.SetAutoRepeat(false)
	rnd := hashutil.NewRand(seed + 1)
	id := prio.ElemID(1)
	for host := 0; host < n; host++ {
		for i := 0; i < opsPerNode; i++ {
			if rnd.Bool(0.6) {
				h.InjectInsert(host, id, rnd.Uint64n(bound)+1, "")
				id++
			} else {
				h.InjectDelete(host)
			}
		}
	}
	eng := h.NewSyncEngine()
	eng.SetParallel(workers)
	return batch{
		eng:   eng,
		start: func() { h.StartCycle(eng.Context(h.Overlay().Anchor)) },
		done:  h.Done,
		virt:  h.Overlay().NumVirtual(),
	}
}

// prepRelax drives the seap workload (same op mix, same priority
// universe) through the relaxation engine instead of the strict
// protocol, so a relax row is directly comparable to the seap row of the
// same n.
func prepRelax(n, opsPerNode, workers int, seed uint64, mode relax.Mode, k, batchSz int) batch {
	bound := uint64(n) * uint64(n) * 16
	h := relax.New(relax.Config{N: n, Seed: seed, Mode: mode, K: k, Batch: batchSz, PrioBound: bound})
	rnd := hashutil.NewRand(seed + 1)
	id := prio.ElemID(1)
	for host := 0; host < n; host++ {
		for i := 0; i < opsPerNode; i++ {
			if rnd.Bool(0.6) {
				h.InjectInsert(host, id, rnd.Uint64n(bound)+1, "")
				id++
			} else {
				h.InjectDelete(host)
			}
		}
	}
	eng := h.NewSyncEngine()
	eng.SetParallel(workers)
	return batch{
		eng:   eng,
		start: func() {}, // relax nodes self-start on activation
		done:  h.Done,
		virt:  h.Overlay().NumVirtual(),
	}
}

// prepSkeapScale is the -scale workload: a bounded total operation count
// (independent of n) on a large skeap, so the case measures the engine's
// per-node costs — construction, activation sweeps, arena recycling,
// bytes/node — rather than workload volume. Mirrors harness experiment
// E29.
func prepSkeapScale(n, totalOps, workers int, seed uint64) batch {
	h := skeap.New(skeap.Config{N: n, P: 8, Seed: seed})
	h.SetAutoRepeat(false)
	rnd := hashutil.NewRand(seed + 1)
	id := prio.ElemID(1)
	for i := 0; i < totalOps; i++ {
		host := rnd.Intn(n)
		if rnd.Bool(0.6) {
			h.InjectInsert(host, id, rnd.Intn(8), "")
			id++
		} else {
			h.InjectDelete(host)
		}
	}
	eng := h.NewSyncEngine()
	eng.SetParallel(workers)
	return batch{
		eng:   eng,
		start: func() { h.StartIteration(eng.Context(h.Overlay().Anchor)) },
		done:  h.Done,
		virt:  h.Overlay().NumVirtual(),
	}
}

func prepKSelect(n, workers int, seed uint64) batch {
	ov := ldb.New(n, hashutil.New(seed))
	sel := kselect.New(ov, hashutil.New(seed+1))
	m := 4 * n
	sel.LoadUniform(m, uint64(m)*4, seed+2)
	eng := sel.NewSyncEngine(seed + 3)
	eng.SetParallel(workers)
	return batch{
		eng:   eng,
		start: func() { sel.Start(eng.Context(sel.Anchor()), int64(2*n)) },
		done:  sel.Done,
		virt:  ov.NumVirtual(),
	}
}

// run executes one prepared batch and converts the measurement to a Case.
func run(proto, engine string, n int, b batch) Case {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	startT := time.Now()
	b.start()
	if !b.eng.RunUntil(b.done, maxRounds(n)) {
		fmt.Fprintf(os.Stderr, "dpqbench: %s n=%d (%s) did not complete\n", proto, n, engine)
		os.Exit(1)
	}
	wall := time.Since(startT)
	runtime.ReadMemStats(&after)

	met := b.eng.Metrics()
	c := Case{
		Proto:       proto,
		N:           n,
		Engine:      engine,
		Workers:     b.eng.Workers(),
		Rounds:      met.Rounds,
		Messages:    met.Messages,
		Activations: int64(met.Rounds) * int64(b.virt),
		WallNs:      wall.Nanoseconds(),
	}
	if wall > 0 {
		c.RoundsPerSec = float64(c.Rounds) / wall.Seconds()
	}
	if c.Activations > 0 {
		c.NsPerActivation = float64(c.WallNs) / float64(c.Activations)
	}
	if c.Rounds > 0 {
		c.AllocsPerRound = float64(after.Mallocs-before.Mallocs) / float64(c.Rounds)
		c.AllocKBPerRound = float64(after.TotalAlloc-before.TotalAlloc) / 1024 / float64(c.Rounds)
	}
	ms := b.eng.MemStats(true)
	c.EngineBytesPerNode = ms.EngineBytesPerNode()
	c.HeapBytesPerNode = ms.HeapBytesPerNode()
	return c
}

// checkBaseline compares this run against a previous result file; it
// returns the number of regressions across matching cases. A case
// regresses when it allocates more than 2x per round, or — with
// speedTol > 0 — when its rounds/sec drop by more than speedTol (the
// wall-clock gate; meaningless across different hardware, so 0 disables
// it).
func checkBaseline(path string, cur []Case, speedTol float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpqbench: baseline: %v\n", err)
		return 1
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "dpqbench: baseline: %v\n", err)
		return 1
	}
	if base.Schema != schema {
		fmt.Fprintf(os.Stderr, "dpqbench: baseline schema %q, want %q\n", base.Schema, schema)
		return 1
	}
	type key struct {
		proto, engine string
		n             int
	}
	ref := map[key]Case{}
	for _, c := range base.Cases {
		ref[key{c.Proto, c.Engine, c.N}] = c
	}
	bad, matched := 0, 0
	for _, c := range cur {
		b, ok := ref[key{c.Proto, c.Engine, c.N}]
		if !ok {
			continue
		}
		matched++
		if b.AllocsPerRound > 0 && c.AllocsPerRound > 2*b.AllocsPerRound {
			fmt.Fprintf(os.Stderr, "dpqbench: REGRESSION %s n=%d (%s): %.0f allocs/round, baseline %.0f (>2x)\n",
				c.Proto, c.N, c.Engine, c.AllocsPerRound, b.AllocsPerRound)
			bad++
		}
		if speedTol > 0 && b.RoundsPerSec > 0 && c.RoundsPerSec < (1-speedTol)*b.RoundsPerSec {
			fmt.Fprintf(os.Stderr, "dpqbench: REGRESSION %s n=%d (%s): %.0f rounds/s, baseline %.0f (>%d%% drop)\n",
				c.Proto, c.N, c.Engine, c.RoundsPerSec, b.RoundsPerSec, int(speedTol*100))
			bad++
		}
		// The bytes/node gate is hardware-independent (unlike rounds/s):
		// 1.5x headroom absorbs allocator and Go-version noise while
		// catching any real per-node state regression.
		if b.HeapBytesPerNode > 0 && c.HeapBytesPerNode > 1.5*b.HeapBytesPerNode {
			fmt.Fprintf(os.Stderr, "dpqbench: REGRESSION %s n=%d (%s): %.0f heap B/node, baseline %.0f (>1.5x)\n",
				c.Proto, c.N, c.Engine, c.HeapBytesPerNode, b.HeapBytesPerNode)
			bad++
		}
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "dpqbench: baseline has no cases matching this run")
		return 1
	}
	fmt.Fprintf(os.Stderr, "dpqbench: baseline check: %d cases compared, %d regressions\n", matched, bad)
	return bad
}

func main() {
	quick := flag.Bool("quick", false, "CI preset: n=256 only, lighter load")
	jsonOut := flag.String("json", "", "write dpq-bench/1 JSON to FILE (default stdout)")
	baseline := flag.String("baseline", "", "compare against a previous result FILE; fail on >2x allocs/round or >speedtol rounds/s regressions")
	speedTol := flag.Float64("speedtol", 0.25, "fractional rounds/s drop tolerated by -baseline (0 disables the wall-clock gate)")
	workers := flag.Int("workers", 0, "worker pool size for the parallel cases (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "deterministic workload seed")
	relaxDim := flag.Bool("relax", false, "add relaxed-DeleteMin cases (the seap workload served by SampleK k=2,4 and BatchLocal) next to the strict protocols")
	scaleDim := flag.Bool("scale", false, "add large-n skeap cases with a bounded workload (n=65536; n=1048576 too without -quick), tracking bytes/node")
	flag.Parse()

	sizes := []int{256, 1024, 4096}
	opsPerNode := 2
	if *quick {
		sizes = []int{256}
	}

	out := File{
		Schema:     schema,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Seed:       *seed,
	}
	// The parallel rows must actually exercise the worker-pool path, so
	// resolve the worker count here and floor it at 2 (SetParallel would
	// resolve 0 to GOMAXPROCS, which is 1 on single-core machines and
	// would silently fall back to the serial path).
	parW := *workers
	if parW == 0 {
		parW = runtime.GOMAXPROCS(0)
	}
	if parW < 2 {
		parW = 2
	}
	engines := []struct {
		label string
		w     int
	}{{"serial", 1}, {"parallel", parW}}
	protos := []string{"skeap", "seap", "kselect"}
	if *relaxDim {
		protos = append(protos, "relax-samplek2", "relax-samplek4", "relax-batchlocal")
	}
	for _, n := range sizes {
		for _, e := range engines {
			for _, proto := range protos {
				fmt.Fprintf(os.Stderr, "dpqbench: %s n=%d workers=%d\n", proto, n, e.w)
				var b batch
				switch proto {
				case "skeap":
					b = prepSkeap(n, opsPerNode, e.w, *seed)
				case "seap":
					b = prepSeap(n, opsPerNode, e.w, *seed)
				case "relax-samplek2":
					b = prepRelax(n, opsPerNode, e.w, *seed, relax.SampleK, 2, 0)
				case "relax-samplek4":
					b = prepRelax(n, opsPerNode, e.w, *seed, relax.SampleK, 4, 0)
				case "relax-batchlocal":
					b = prepRelax(n, opsPerNode, e.w, *seed, relax.BatchLocal, 0, 8)
				default:
					b = prepKSelect(n, e.w, *seed)
				}
				out.Cases = append(out.Cases, run(proto, e.label, n, b))
			}
		}
	}
	if *scaleDim {
		scaleSizes := []int{65536}
		if !*quick {
			scaleSizes = append(scaleSizes, 1048576)
		}
		const scaleOps = 4096
		for _, n := range scaleSizes {
			fmt.Fprintf(os.Stderr, "dpqbench: skeap-scale n=%d workers=%d\n", n, parW)
			b := prepSkeapScale(n, scaleOps, parW, *seed)
			out.Cases = append(out.Cases, run("skeap-scale", "parallel", n, b))
		}
	}

	enc, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpqbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *jsonOut == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dpqbench:", err)
		os.Exit(1)
	}

	for _, c := range out.Cases {
		fmt.Fprintf(os.Stderr, "  %-8s n=%-7d %-8s rounds=%-6d %9.0f rounds/s %7.0f ns/activation %8.1f allocs/round %6.0f heapB/node\n",
			c.Proto, c.N, c.Engine, c.Rounds, c.RoundsPerSec, c.NsPerActivation, c.AllocsPerRound, c.HeapBytesPerNode)
	}

	if *baseline != "" {
		if checkBaseline(*baseline, out.Cases, *speedTol) > 0 {
			os.Exit(1)
		}
	}
}
