// Command churnsim exercises membership churn (§1.4(4)) on a live heap:
// waves of operations interleaved with joins and leaves, with data
// conservation and semantics verified after every wave.
//
// Usage:
//
//	churnsim [-proto skeap|seap] [-n 8] [-waves 6] [-ops 20] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpq/internal/hashutil"
	"dpq/internal/mathx"
	"dpq/internal/prio"
	"dpq/internal/seap"
	"dpq/internal/semantics"
	"dpq/internal/sim"
	"dpq/internal/skeap"
)

// churnable abstracts the two protocols for the driver.
type churnable interface {
	InjectDelete(host int)
	Done() bool
	Trace() *semantics.Trace
	StoreSizes() []int
	MigratedLastChange() int
}

func main() {
	proto := flag.String("proto", "skeap", "protocol: skeap or seap")
	n := flag.Int("n", 8, "initial number of processes")
	waves := flag.Int("waves", 6, "operation waves")
	ops := flag.Int("ops", 20, "operations per wave")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	rnd := hashutil.NewRand(*seed + 100)
	budget := 30000 * (mathx.Log2Ceil(*n) + 4)
	id := prio.ElemID(1)

	var (
		h       churnable
		eng     *sim.SyncEngine
		insert  func(host int)
		drive   func() bool
		active  func(host int) bool
		hosts   func() int
		remove  func(host int)
		join    func(pid uint64) int
		checkOK func() error
	)

	switch *proto {
	case "skeap":
		sk := skeap.New(skeap.Config{N: *n, P: 4, Seed: *seed})
		sk.SetAutoRepeat(false)
		eng = sk.NewSyncEngine()
		h = sk
		insert = func(host int) { sk.InjectInsert(host, id, rnd.Intn(4), ""); id++ }
		drive = func() bool {
			for i := 0; i < 50; i++ {
				if sk.Done() && !eng.Pending() {
					return true
				}
				sk.StartIteration(eng.Context(sk.Overlay().Anchor))
				if !eng.RunQuiescent(sk.Done, budget) {
					return false
				}
			}
			return sk.Done()
		}
		active = sk.Overlay().ActiveHost
		hosts = func() int { return len(sk.StoreSizes()) }
		remove = func(host int) { sk.RemoveHost(eng, host) }
		join = func(pid uint64) int { return sk.AddHost(eng, pid) }
		checkOK = func() error {
			if rep := semantics.CheckAll(sk.Trace(), semantics.FIFO); !rep.Ok() {
				return fmt.Errorf("%s", rep.Error())
			}
			return nil
		}
	case "seap":
		se := seap.New(seap.Config{N: *n, PrioBound: 1 << 16, Seed: *seed})
		se.SetAutoRepeat(false)
		eng = se.NewSyncEngine()
		h = se
		insert = func(host int) { se.InjectInsert(host, id, rnd.Uint64n(1<<16)+1, ""); id++ }
		drive = func() bool {
			for i := 0; i < 80; i++ {
				if se.Done() && !eng.Pending() {
					return true
				}
				se.StartCycle(eng.Context(se.Overlay().Anchor))
				if !eng.RunQuiescent(se.Done, budget) {
					return false
				}
			}
			return se.Done()
		}
		active = se.Overlay().ActiveHost
		hosts = func() int { return len(se.StoreSizes()) }
		remove = func(host int) { se.RemoveHost(eng, host) }
		join = func(pid uint64) int { return se.AddHost(eng, pid) }
		checkOK = func() error {
			if rep := semantics.CheckSerializable(se.Trace(), semantics.ByID); !rep.Ok() {
				return fmt.Errorf("%s", rep.Error())
			}
			return nil
		}
	default:
		fmt.Fprintln(os.Stderr, "churnsim: unknown -proto")
		os.Exit(2)
	}

	pickHost := func() int {
		for {
			host := rnd.Intn(hosts())
			if active(host) {
				return host
			}
		}
	}

	for wave := 0; wave < *waves; wave++ {
		for i := 0; i < *ops; i++ {
			if rnd.Bool(0.65) {
				insert(pickHost())
			} else {
				h.InjectDelete(pickHost())
			}
		}
		if !drive() {
			fmt.Fprintln(os.Stderr, "churnsim: wave did not drain")
			os.Exit(1)
		}
		stored := 0
		for _, s := range h.StoreSizes() {
			stored += s
		}
		switch wave % 3 {
		case 0:
			victim := pickHost()
			remove(victim)
			fmt.Printf("wave %d: drained; host %d left, %d/%d elements migrated\n",
				wave, victim, h.MigratedLastChange(), stored)
		case 1:
			newHost := join(uint64(10000 + wave))
			fmt.Printf("wave %d: drained; host %d joined, %d/%d elements migrated\n",
				wave, newHost, h.MigratedLastChange(), stored)
		default:
			fmt.Printf("wave %d: drained; membership unchanged (%d elements stored)\n", wave, stored)
		}
		if err := checkOK(); err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: semantics violated after wave %d:\n%v\n", wave, err)
			os.Exit(1)
		}
	}
	fmt.Printf("churn complete: %d waves, %d operations, semantics verified after every wave ✓\n",
		*waves, h.Trace().Len())
}
