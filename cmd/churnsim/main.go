// Command churnsim exercises membership churn (§1.4(4)) on a live heap:
// waves of operations interleaved with joins and leaves, with data
// conservation and semantics verified after every wave.
//
// With -faults the simulation switches to the asynchronous engine behind
// the fault-injection layer: messages are dropped, duplicated and delayed
// and nodes crash-recover according to the chosen profile, while every
// virtual node runs behind a sim.ReliableTransport. Membership stays fixed
// in this mode (joins/leaves need the synchronous engine); crashes take
// their place. -trace-out records the injected fault schedule, -trace-in
// replays a recorded schedule bit-identically.
//
// Usage:
//
//	churnsim [-proto skeap|seap] [-n 8] [-waves 6] [-ops 20] [-seed 1]
//	churnsim -faults drop20dup [-fault-seed 7] [-trace-out faults.txt]
//	churnsim -trace-in faults.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"dpq/internal/hashutil"
	"dpq/internal/mathx"
	"dpq/internal/obs"
	"dpq/internal/prio"
	"dpq/internal/seap"
	"dpq/internal/semantics"
	"dpq/internal/sim"
	"dpq/internal/skeap"
)

// churnable abstracts the two protocols for the driver.
type churnable interface {
	InjectDelete(host int) *semantics.Op
	Done() bool
	Trace() *semantics.Trace
	StoreSizes() []int
	MigratedLastChange() int
	SetObs(c *obs.Collector)
}

func main() {
	proto := flag.String("proto", "skeap", "protocol: skeap or seap")
	n := flag.Int("n", 8, "initial number of processes")
	waves := flag.Int("waves", 6, "operation waves")
	ops := flag.Int("ops", 20, "operations per wave")
	seed := flag.Uint64("seed", 1, "simulation seed")
	faults := flag.String("faults", "", "fault profile (lossless|drop5|drop20dup or drop=0.2,dup=0.1,...); enables async fault mode")
	faultSeed := flag.Uint64("fault-seed", 0, "fault plan seed (0 = derive from -seed)")
	traceOut := flag.String("trace-out", "", "write the injected fault trace to this file")
	traceIn := flag.String("trace-in", "", "replay a recorded fault trace instead of sampling faults")
	of := obs.AddFlags()
	flag.Parse()

	if *traceIn != "" && (*faults != "" || *faultSeed != 0) {
		fmt.Fprintln(os.Stderr, "churnsim: -trace-in replays a recorded fault schedule and cannot be combined with -faults or -fault-seed (the replayed trace already fixes every fault decision)")
		os.Exit(2)
	}

	sess, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "churnsim:", err)
		os.Exit(1)
	}

	if *faults != "" || *traceIn != "" {
		faultMain(*proto, *n, *waves, *ops, *seed, *faults, *faultSeed, *traceOut, *traceIn, sess)
		return
	}

	rnd := hashutil.NewRand(*seed + 100)
	budget := 30000 * (mathx.Log2Ceil(*n) + 4)
	id := prio.ElemID(1)

	var (
		h       churnable
		eng     *sim.SyncEngine
		insert  func(host int)
		drive   func() bool
		active  func(host int) bool
		hosts   func() int
		remove  func(host int)
		join    func(pid uint64) int
		checkOK func() error
	)

	switch *proto {
	case "skeap":
		sk := skeap.New(skeap.Config{N: *n, P: 4, Seed: *seed})
		sk.SetAutoRepeat(false)
		eng = sk.NewSyncEngine()
		h = sk
		insert = func(host int) { sk.InjectInsert(host, id, rnd.Intn(4), ""); id++ }
		drive = func() bool {
			for i := 0; i < 50; i++ {
				if sk.Done() && !eng.Pending() {
					return true
				}
				sk.StartIteration(eng.Context(sk.Overlay().Anchor))
				if !eng.RunQuiescent(sk.Done, budget) {
					return false
				}
			}
			return sk.Done()
		}
		active = sk.Overlay().ActiveHost
		hosts = func() int { return len(sk.StoreSizes()) }
		remove = func(host int) { sk.RemoveHost(eng, host) }
		join = func(pid uint64) int { return sk.AddHost(eng, pid) }
		checkOK = func() error {
			if rep := semantics.CheckAll(sk.Trace(), semantics.FIFO); !rep.Ok() {
				return fmt.Errorf("%s", rep.Error())
			}
			return nil
		}
	case "seap":
		se := seap.New(seap.Config{N: *n, PrioBound: 1 << 16, Seed: *seed})
		se.SetAutoRepeat(false)
		eng = se.NewSyncEngine()
		h = se
		insert = func(host int) { se.InjectInsert(host, id, rnd.Uint64n(1<<16)+1, ""); id++ }
		drive = func() bool {
			for i := 0; i < 80; i++ {
				if se.Done() && !eng.Pending() {
					return true
				}
				se.StartCycle(eng.Context(se.Overlay().Anchor))
				if !eng.RunQuiescent(se.Done, budget) {
					return false
				}
			}
			return se.Done()
		}
		active = se.Overlay().ActiveHost
		hosts = func() int { return len(se.StoreSizes()) }
		remove = func(host int) { se.RemoveHost(eng, host) }
		join = func(pid uint64) int { return se.AddHost(eng, pid) }
		checkOK = func() error {
			if rep := semantics.CheckSerializable(se.Trace(), semantics.ByID); !rep.Ok() {
				return fmt.Errorf("%s", rep.Error())
			}
			return nil
		}
	default:
		fmt.Fprintln(os.Stderr, "churnsim: unknown -proto")
		os.Exit(2)
	}

	eng.SetObserver(sess.Observer())
	h.SetObs(sess.Collector())

	pickHost := func() int {
		for {
			host := rnd.Intn(hosts())
			if active(host) {
				return host
			}
		}
	}

	for wave := 0; wave < *waves; wave++ {
		for i := 0; i < *ops; i++ {
			if rnd.Bool(0.65) {
				insert(pickHost())
			} else {
				h.InjectDelete(pickHost())
			}
		}
		if !drive() {
			fmt.Fprintln(os.Stderr, "churnsim: wave did not drain")
			os.Exit(1)
		}
		stored := 0
		for _, s := range h.StoreSizes() {
			stored += s
		}
		switch wave % 3 {
		case 0:
			victim := pickHost()
			remove(victim)
			fmt.Printf("wave %d: drained; host %d left, %d/%d elements migrated\n",
				wave, victim, h.MigratedLastChange(), stored)
		case 1:
			newHost := join(uint64(10000 + wave))
			fmt.Printf("wave %d: drained; host %d joined, %d/%d elements migrated\n",
				wave, newHost, h.MigratedLastChange(), stored)
		default:
			fmt.Printf("wave %d: drained; membership unchanged (%d elements stored)\n", wave, stored)
		}
		if err := checkOK(); err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: semantics violated after wave %d:\n%v\n", wave, err)
			os.Exit(1)
		}
	}
	if err := sess.Close(eng.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, "churnsim:", err)
		os.Exit(1)
	}
	fmt.Printf("churn complete: %d waves, %d operations, semantics verified after every wave ✓\n",
		*waves, h.Trace().Len())
}

// faultMain runs the fault-injection mode: waves of operations on the
// asynchronous engine under a FaultPlan, every node behind a reliable
// transport, with semantics and data conservation checked per wave.
func faultMain(proto string, n, waves, ops int, seed uint64, faults string, faultSeed uint64, traceOut, traceIn string, sess *obs.Session) {
	var plan *sim.FaultPlan
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: %v\n", err)
			os.Exit(2)
		}
		tr, err := sim.DecodeFaultTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: bad fault trace: %v\n", err)
			os.Exit(2)
		}
		plan = sim.ReplayFaultPlan(tr)
	} else {
		if faultSeed == 0 {
			faultSeed = seed
		}
		prof, err := sim.ParseFaultProfile(faults, faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: %v\n", err)
			os.Exit(2)
		}
		plan = sim.NewFaultPlan(prof)
	}

	rnd := hashutil.NewRand(seed + 100)
	id := prio.ElemID(1)
	const budget = 30_000_000

	var (
		h          churnable
		eng        *sim.AsyncEngine
		transports []*sim.ReliableTransport
		insert     func(host int)
		checkOK    func() error
	)
	switch proto {
	case "skeap":
		sk := skeap.New(skeap.Config{N: n, P: 4, Seed: seed})
		eng, transports = sk.NewFaultyAsyncEngine(3.0, plan)
		h = sk
		insert = func(host int) { sk.InjectInsert(host, id, rnd.Intn(4), ""); id++ }
		checkOK = func() error {
			if rep := semantics.CheckAll(sk.Trace(), semantics.FIFO); !rep.Ok() {
				return fmt.Errorf("%s", rep.Error())
			}
			return nil
		}
	case "seap":
		se := seap.New(seap.Config{N: n, PrioBound: 1 << 16, Seed: seed})
		eng, transports = se.NewFaultyAsyncEngine(3.0, plan)
		h = se
		insert = func(host int) { se.InjectInsert(host, id, rnd.Uint64n(1<<16)+1, ""); id++ }
		checkOK = func() error {
			if rep := semantics.CheckSerializable(se.Trace(), semantics.ByID); !rep.Ok() {
				return fmt.Errorf("%s", rep.Error())
			}
			return nil
		}
	default:
		fmt.Fprintln(os.Stderr, "churnsim: unknown -proto")
		os.Exit(2)
	}
	eng.SetObserver(sess.Observer())
	h.SetObs(sess.Collector())

	// An operation can complete before its DHT Put lands (phase 4 traffic
	// overlaps the next iteration), so a wave is drained only once every
	// op finished AND the stores conserve the completed operations exactly.
	// Once Done() holds, delete responses have all arrived, so expected()
	// is final and stored() can only grow towards it as the last Puts land.
	// (Transport idleness is not waited for: in autoRepeat mode the anchor
	// pipelines iterations, so some message is almost always unacked.)
	stored := func() int {
		total := 0
		for _, s := range h.StoreSizes() {
			total += s
		}
		return total
	}
	expected := func() int {
		insDone, delsMatched := 0, 0
		for _, op := range h.Trace().Ops() {
			if !op.Done {
				continue
			}
			if op.Kind == semantics.Insert {
				insDone++
			} else if !op.Result.Nil() {
				delsMatched++
			}
		}
		return insDone - delsMatched
	}
	drained := func() bool {
		return h.Done() && stored() == expected()
	}

	for wave := 0; wave < waves; wave++ {
		for i := 0; i < ops; i++ {
			if rnd.Bool(0.65) {
				insert(rnd.Intn(n))
			} else {
				h.InjectDelete(rnd.Intn(n))
			}
		}
		if !eng.RunUntil(drained, budget) {
			fmt.Fprintf(os.Stderr, "churnsim: wave %d did not drain under faults [%v] (stored %d, expected %d)\n",
				wave, plan, stored(), expected())
			os.Exit(1)
		}
		if err := checkOK(); err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: semantics violated after wave %d:\n%v\n", wave, err)
			os.Exit(1)
		}
		fmt.Printf("wave %d: drained under faults (%d elements stored, conservation ok)\n", wave, stored())
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: %v\n", err)
			os.Exit(2)
		}
		if err := plan.Trace().Encode(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "churnsim: writing trace: %v\n", err)
			os.Exit(2)
		}
	}

	if err := sess.Close(eng.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, "churnsim:", err)
		os.Exit(1)
	}
	stats := sim.SumTransportStats(transports)
	fmt.Printf("faults injected: %v\n", plan)
	fmt.Printf("transport: sent=%d retries=%d dups-suppressed=%d\n", stats.Sent, stats.Retries, stats.Duplicates)
	fmt.Printf("engine: %v\n", eng.Metrics())
	fmt.Printf("fault soak complete: %d waves, %d operations, semantics + conservation verified after every wave ✓\n",
		waves, h.Trace().Len())
}
