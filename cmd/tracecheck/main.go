// Command tracecheck validates a JSONL delivery trace (schema dpq-trace/1,
// as written by the simulators' -trace-jsonl flag): header, field set, seq
// contiguity and round monotonicity. With -metrics it cross-checks the
// trace against the run's -metrics-out document — per-kind counts and the
// engine totals must agree, catching accounting drift between the trace
// exporter and the metrics collector.
//
// With -per-node, round monotonicity is checked per sending node instead
// of globally: traces from the network runtime (cmd/dpqd) stamp each
// delivery with the sender's local activation tick, so ticks of different
// processes interleave while each sender's stay ordered.
//
// Usage:
//
//	tracecheck [-metrics run.json] [-per-node] trace.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"dpq/internal/obs"
)

func main() {
	metricsPath := flag.String("metrics", "", "cross-check against this -metrics-out JSON file")
	perNode := flag.Bool("per-node", false, "check round monotonicity per sending node (network-runtime traces)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-metrics run.json] [-per-node] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	defer f.Close()
	sum, err := obs.ValidateTraceOpts(f, obs.TraceOptions{PerNodeRounds: *perNode})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: invalid trace:", err)
		os.Exit(1)
	}

	fmt.Printf("trace ok: %d deliveries, %d bits, %d kinds (%s)\n",
		sum.Deliveries, sum.TotalBits, len(sum.Kinds), obs.TraceSchema)
	names := make([]string, 0, len(sum.Kinds))
	for k := range sum.Kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-18s %d\n", k, sum.Kinds[k])
	}

	if *metricsPath == "" {
		return
	}
	if err := crossCheck(*metricsPath, sum); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: metrics mismatch:", err)
		os.Exit(1)
	}
	fmt.Println("metrics cross-check ok: per-kind counts and engine totals agree")
}

// crossCheck verifies the trace summary against a -metrics-out document.
func crossCheck(path string, sum *obs.TraceSummary) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Engine struct {
			Messages  int64 `json:"messages"`
			TotalBits int64 `json:"totalBits"`
		} `json:"engine"`
		Kinds map[string]struct {
			Count int64 `json:"count"`
		} `json:"kinds"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Engine.Messages != sum.Deliveries {
		return fmt.Errorf("engine.messages=%d but trace has %d deliveries", doc.Engine.Messages, sum.Deliveries)
	}
	if doc.Engine.TotalBits != sum.TotalBits {
		return fmt.Errorf("engine.totalBits=%d but trace sums to %d", doc.Engine.TotalBits, sum.TotalBits)
	}
	for k, ks := range doc.Kinds {
		if ks.Count != sum.Kinds[k] {
			return fmt.Errorf("kind %q: metrics count %d, trace count %d", k, ks.Count, sum.Kinds[k])
		}
	}
	for k, c := range sum.Kinds {
		if _, ok := doc.Kinds[k]; !ok {
			return fmt.Errorf("kind %q (%d deliveries) missing from metrics", k, c)
		}
	}
	return nil
}
