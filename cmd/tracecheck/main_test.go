package main

import (
	"os"
	"strings"
	"testing"

	"dpq/internal/obs"
)

// The fixture interleaves two senders whose own rounds only grow while the
// global sequence jumps backwards — the shape every network-runtime trace
// has, because deliveries carry the sender's local tick.
func openFixture(t *testing.T) *os.File {
	t.Helper()
	f, err := os.Open("testdata/per_node_rounds.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestPerNodeFixturePassesRelaxedCheck(t *testing.T) {
	sum, err := obs.ValidateTraceOpts(openFixture(t), obs.TraceOptions{PerNodeRounds: true})
	if err != nil {
		t.Fatalf("per-node validation rejected the fixture: %v", err)
	}
	if sum.Deliveries != 5 {
		t.Fatalf("got %d deliveries, want 5", sum.Deliveries)
	}
}

func TestPerNodeFixtureFailsGlobalCheck(t *testing.T) {
	_, err := obs.ValidateTrace(openFixture(t))
	if err == nil || !strings.Contains(err.Error(), "round 1 after round 5") {
		t.Fatalf("global validation should reject the interleaved fixture, got %v", err)
	}
}

func TestPerNodeCheckStillCatchesSenderRegression(t *testing.T) {
	trace := `{"schema":"dpq-trace/1"}
{"seq":1,"round":7,"time":0.001,"from":0,"to":1,"kind":"xport/msg","bits":64,"group":0}
{"seq":2,"round":6,"time":0.002,"from":0,"to":1,"kind":"xport/msg","bits":64,"group":0}
`
	_, err := obs.ValidateTraceOpts(strings.NewReader(trace), obs.TraceOptions{PerNodeRounds: true})
	if err == nil || !strings.Contains(err.Error(), "node 0 round 6 after round 7") {
		t.Fatalf("per-node validation should reject a sender's round regression, got %v", err)
	}
}
