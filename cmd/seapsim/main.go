// Command seapsim runs a Seap network under a configurable workload and
// prints the protocol metrics plus a semantics verdict.
//
// Usage:
//
//	seapsim [-n 64] [-prios 1048576] [-lambda 4] [-rounds 50] [-mix 0.6] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpq/internal/mathx"
	"dpq/internal/obs"
	"dpq/internal/seap"
	"dpq/internal/semantics"
	"dpq/internal/workload"
)

func main() {
	n := flag.Int("n", 64, "number of processes")
	prios := flag.Uint64("prios", 1<<20, "priority universe size |𝒫| (poly(n))")
	lambda := flag.Int("lambda", 4, "injection rate λ per node per round")
	rounds := flag.Int("rounds", 50, "injection horizon in rounds")
	mix := flag.Float64("mix", 0.6, "fraction of inserts")
	seed := flag.Uint64("seed", 1, "simulation seed")
	verbose := flag.Bool("v", false, "print every DeleteMin outcome")
	record := flag.String("record", "", "write the generated workload to FILE")
	replay := flag.String("replay", "", "replay a recorded workload from FILE (overrides generation)")
	seqCons := flag.Bool("seqconsistent", false, "run the §6 sequentially consistent variant (one op per node per phase)")
	workers := flag.Int("workers", 1, "round-engine worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	of := obs.AddFlags()
	flag.Parse()

	sess, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "seapsim:", err)
		os.Exit(1)
	}
	h := seap.New(seap.Config{N: *n, PrioBound: *prios, Seed: *seed, SeqConsistent: *seqCons})
	eng := h.NewSyncEngine()
	if *workers != 1 {
		eng.SetParallel(*workers)
	}
	eng.SetBatchObserver(sess.BatchObserver())
	h.SetObs(sess.Collector())
	stream := loadOrGenerate(*replay, *record, *rounds, workload.Config{
		N: *n, Rate: *lambda, InsertFrac: *mix,
		Dist: workload.Uniform, Bound: *prios, Seed: *seed + 1,
	})
	for _, ops := range stream {
		for _, op := range ops {
			if op.Kind == workload.OpInsert {
				h.InjectInsert(op.Host, op.ID, op.Prio, "")
			} else {
				h.InjectDelete(op.Host)
			}
		}
		eng.Step()
	}
	if !eng.RunUntil(h.Done, 200000*(mathx.Log2Ceil(*n)+3)) {
		fmt.Fprintln(os.Stderr, "seapsim: protocol did not drain the workload")
		os.Exit(1)
	}
	if err := sess.Close(eng.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, "seapsim:", err)
		os.Exit(1)
	}

	m := eng.Metrics()
	fmt.Printf("Seap   n=%d |𝒫|=%d Λ=%d horizon=%d\n", *n, *prios, *lambda, *rounds)
	fmt.Printf("  operations     %d (%d cycles, %d elements left)\n", h.Trace().Len(), h.Cycles(), h.Size())
	fmt.Printf("  rounds         %d\n", m.Rounds)
	fmt.Printf("  messages       %d (max %d bits, congestion %d)\n", m.Messages, m.MaxMessageBit, m.Congestion)

	if *verbose {
		for _, op := range h.Trace().Ops() {
			if op.Kind == semantics.DeleteMin {
				fmt.Printf("  node %2d DeleteMin → %v\n", op.Node, op.Result)
			}
		}
	}

	if *seqCons {
		rep := semantics.CheckAll(h.Trace(), semantics.ByID)
		if rep.Ok() {
			fmt.Println("  semantics      sequentially consistent + heap consistent ✓ (§6 variant)")
		} else {
			fmt.Printf("  semantics      VIOLATED:\n%s", rep.Error())
			os.Exit(1)
		}
	} else {
		rep := semantics.CheckSerializable(h.Trace(), semantics.ByID)
		if rep.Ok() {
			fmt.Println("  semantics      serializable + heap consistent ✓")
		} else {
			fmt.Printf("  semantics      VIOLATED:\n%s", rep.Error())
			os.Exit(1)
		}
	}
}

// loadOrGenerate returns the per-round operation stream: replayed from a
// recording when replayPath is set, otherwise generated (and optionally
// recorded to recordPath).
func loadOrGenerate(replayPath, recordPath string, rounds int, cfg workload.Config) [][]workload.Op {
	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		defer f.Close()
		stream, err := workload.ReadRounds(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		return stream
	}
	gen := workload.New(cfg)
	stream := make([][]workload.Op, rounds)
	for r := range stream {
		stream[r] = gen.Round()
	}
	if recordPath != "" {
		f, err := os.Create(recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "record:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteRounds(f, stream); err != nil {
			fmt.Fprintln(os.Stderr, "record:", err)
			os.Exit(1)
		}
	}
	return stream
}
